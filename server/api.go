package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro"
)

// QueryRequest is the body of POST /v1/query. Exactly one of Focal (an
// index into the served dataset) or Point (a what-if record with the
// dataset's dimensionality) must be set.
type QueryRequest struct {
	// Focal is the index of the focal record in the served dataset.
	Focal *int `json:"focal,omitempty"`
	// Point is a hypothetical focal record (the paper's what-if scenario).
	Point []float64 `json:"point,omitempty"`
	// Algorithm selects the strategy by name ("auto", "fca", "ba", "aa");
	// empty means auto.
	Algorithm string `json:"algorithm,omitempty"`
	// Tau enables iMaxRank: regions with rank up to k*+tau are reported.
	Tau int `json:"tau,omitempty"`
	// OutrankIDs materialises, per region, the IDs of the records that
	// outrank the focal record there.
	OutrankIDs bool `json:"outrank_ids,omitempty"`
	// MaxRegions truncates the reported regions (0 = all); TotalRegions in
	// the response always reports the untruncated count.
	MaxRegions int `json:"max_regions,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query, and one
// element of a batch response.
type QueryResponse struct {
	// KStar is the best rank the focal record can achieve.
	KStar int `json:"k_star"`
	// Dominators is the number of records outranking the focal record
	// under every preference.
	Dominators int64 `json:"dominators"`
	// MinOrder is the minimum arrangement-cell order (KStar-Dominators-1).
	MinOrder int `json:"min_order"`
	// Cached reports that the answer came from the engine's result cache.
	Cached bool `json:"cached"`
	// TotalRegions is the full region count, before MaxRegions truncation.
	TotalRegions int `json:"total_regions"`
	// Regions lists the qualifying regions, best rank first.
	Regions []RegionJSON `json:"regions"`
	// Stats reports the cost of the (possibly cached) computation.
	Stats QueryStats `json:"stats"`
}

// RegionJSON is the wire form of one repro.Region.
type RegionJSON struct {
	// Rank of the focal record anywhere in this region.
	Rank int `json:"rank"`
	// Order is the region's arrangement-cell order (Rank-Dominators-1).
	Order int `json:"order"`
	// Witness is a point inside the region, in reduced (d-1)-dim
	// preference coordinates.
	Witness []float64 `json:"witness"`
	// QueryVector is the witness lifted to a full d-dim preference.
	QueryVector []float64 `json:"query_vector"`
	// BoxLo and BoxHi bound the region in reduced coordinates.
	BoxLo []float64 `json:"box_lo"`
	BoxHi []float64 `json:"box_hi"`
	// OutrankIDs lists the records outranking the focal here (present only
	// when the request set outrank_ids).
	OutrankIDs []int64 `json:"outrank_ids,omitempty"`
}

// QueryStats is the wire form of repro.Stats. For a cached answer these
// are the counters of the original computation.
type QueryStats struct {
	// CPUMicros is the computation's CPU time in microseconds.
	CPUMicros int64 `json:"cpu_us"`
	// IOPages is the number of simulated page accesses.
	IOPages int64 `json:"io_pages"`
	// RecordsAccessed is n (BA/FCA) or n_a (AA) in the paper's accounting.
	RecordsAccessed int64 `json:"records_accessed"`
	// Algorithm names the strategy that computed the answer.
	Algorithm string `json:"algorithm"`
}

// BatchRequest is the body of POST /v1/batch: the listed focal indexes are
// queried on the engine's worker pool under shared options.
type BatchRequest struct {
	// Focals lists the in-dataset focal record indexes to query.
	Focals []int `json:"focals"`
	// Algorithm, Tau, OutrankIDs and MaxRegions apply to every query; see
	// QueryRequest.
	Algorithm  string `json:"algorithm,omitempty"`
	Tau        int    `json:"tau,omitempty"`
	OutrankIDs bool   `json:"outrank_ids,omitempty"`
	MaxRegions int    `json:"max_regions,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch; Results align
// with the requested focal order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Dataset DatasetStats      `json:"dataset"`
	Engine  repro.EngineStats `json:"engine"`
	Server  ServerStats       `json:"server"`
}

// DatasetStats describes the served dataset.
type DatasetStats struct {
	// Records and Dim are the dataset's cardinality and dimensionality.
	Records int `json:"records"`
	Dim     int `json:"dim"`
	// Fingerprint is the dataset content digest that keys the result cache.
	Fingerprint string `json:"fingerprint"`
}

// ServerStats reports the HTTP-layer counters.
type ServerStats struct {
	// Requests counts every request routed to a handler since start.
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a 4xx or 5xx status.
	Errors int64 `json:"errors"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// handleQuery serves POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if (req.Focal == nil) == (len(req.Point) == 0) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("exactly one of focal or point must be set"))
		return
	}
	opts, err := queryOptions(req.Algorithm, req.Tau, req.OutrankIDs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var res *repro.Result
	if req.Focal != nil {
		res, err = s.eng.Query(ctx, *req.Focal, opts...)
	} else {
		res, err = s.eng.QueryPoint(ctx, req.Point, opts...)
	}
	if err != nil {
		s.fail(w, queryStatus(err), err)
		return
	}
	s.reply(w, http.StatusOK, convertResult(res, req.MaxRegions))
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Focals) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("focals must be non-empty"))
		return
	}
	if len(req.Focals) > s.maxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the limit of %d", len(req.Focals), s.maxBatch))
		return
	}
	opts, err := queryOptions(req.Algorithm, req.Tau, req.OutrankIDs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, err := s.eng.QueryBatch(ctx, req.Focals, opts...)
	if err != nil {
		s.fail(w, queryStatus(err), err)
		return
	}
	resp := BatchResponse{Results: make([]QueryResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = convertResult(res, req.MaxRegions)
	}
	s.reply(w, http.StatusOK, resp)
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	s.reply(w, http.StatusOK, StatsResponse{
		Dataset: DatasetStats{
			Records:     ds.Len(),
			Dim:         ds.Dim(),
			Fingerprint: ds.Fingerprint(),
		},
		Engine: s.eng.Stats(),
		Server: ServerStats{
			Requests:      s.requests.Load(),
			Errors:        s.errors.Load(),
			UptimeSeconds: time.Since(s.start).Seconds(),
		},
	})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, map[string]string{"status": "ok"})
}

// requestContext derives the handler context, applying the per-request
// timeout when one is configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

// decode parses the JSON request body into dst, answering 400 itself on
// malformed input and reporting whether the handler should proceed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// reply writes a JSON response.
func (s *Server) reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

// fail writes a JSON error response and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	s.logf("server: %d: %v", status, err)
	s.reply(w, status, ErrorResponse{Error: err.Error()})
}

// queryStatus maps a query error to an HTTP status: request-caused
// failures (repro.ErrBadQuery) are 400, deadline overruns 504, client
// disconnects 408, and anything else is a genuine internal failure, 500 —
// so 5xx-based alerting sees engine bugs rather than blaming the client.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, repro.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// queryOptions assembles the engine options shared by query and batch.
func queryOptions(algorithm string, tau int, outrankIDs bool) ([]repro.Option, error) {
	var opts []repro.Option
	if algorithm != "" {
		alg, err := repro.ParseAlgorithm(algorithm)
		if err != nil {
			return nil, err
		}
		opts = append(opts, repro.WithAlgorithm(alg))
	}
	if tau < 0 {
		return nil, fmt.Errorf("tau must be >= 0, got %d", tau)
	}
	if tau > 0 {
		opts = append(opts, repro.WithTau(tau))
	}
	if outrankIDs {
		opts = append(opts, repro.WithOutrankIDs(true))
	}
	return opts, nil
}

// convertResult maps a repro.Result to its wire form, truncating regions
// to maxRegions when positive.
func convertResult(res *repro.Result, maxRegions int) QueryResponse {
	out := QueryResponse{
		KStar:        res.KStar,
		Dominators:   res.Dominators,
		MinOrder:     res.MinOrder,
		Cached:       res.Cached,
		TotalRegions: len(res.Regions),
		Stats: QueryStats{
			CPUMicros:       res.Stats.CPUTime.Microseconds(),
			IOPages:         res.Stats.IO,
			RecordsAccessed: res.Stats.IncomparableAccessed,
			Algorithm:       res.Stats.Algorithm.String(),
		},
	}
	n := len(res.Regions)
	if maxRegions > 0 && maxRegions < n {
		n = maxRegions
	}
	out.Regions = make([]RegionJSON, n)
	for i := 0; i < n; i++ {
		reg := &res.Regions[i]
		out.Regions[i] = RegionJSON{
			Rank:        reg.Rank,
			Order:       reg.Order,
			Witness:     reg.Witness,
			QueryVector: reg.QueryVector,
			BoxLo:       reg.BoxLo,
			BoxHi:       reg.BoxHi,
			OutrankIDs:  reg.OutrankIDs,
		}
	}
	return out
}
