package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/server/apiv1"
)

// The request envelopes and error schema of the /v1 API live in the
// versioned wire-contract package; the server aliases them so existing
// callers keep compiling against server.QueryRequest and friends. See
// package apiv1 for the field semantics and the compatibility contract.
type (
	QueryRequest  = apiv1.QueryRequest
	BatchRequest  = apiv1.BatchRequest
	MutateOp      = apiv1.MutateOp
	MutateRequest = apiv1.MutateRequest
	AttachRequest = apiv1.AttachRequest
	ErrorResponse = apiv1.ErrorResponse
)

// QueryResponse is the body of a successful POST /v1/query, and one
// element of a batch response.
type QueryResponse struct {
	// KStar is the best rank the focal record can achieve.
	KStar int `json:"k_star"`
	// Dominators is the number of records outranking the focal record
	// under every preference.
	Dominators int64 `json:"dominators"`
	// MinOrder is the minimum arrangement-cell order (KStar-Dominators-1).
	MinOrder int `json:"min_order"`
	// Cached reports that the answer came from the engine's result cache.
	Cached bool `json:"cached"`
	// TotalRegions is the full region count, before MaxRegions truncation.
	TotalRegions int `json:"total_regions"`
	// Regions lists the qualifying regions, best rank first.
	Regions []RegionJSON `json:"regions"`
	// Stats reports the cost of the (possibly cached) computation.
	Stats QueryStats `json:"stats"`
}

// RegionJSON is the wire form of one repro.Region.
type RegionJSON struct {
	// Rank of the focal record anywhere in this region.
	Rank int `json:"rank"`
	// Order is the region's arrangement-cell order (Rank-Dominators-1).
	Order int `json:"order"`
	// Witness is a point inside the region, in reduced (d-1)-dim
	// preference coordinates.
	Witness []float64 `json:"witness"`
	// QueryVector is the witness lifted to a full d-dim preference.
	QueryVector []float64 `json:"query_vector"`
	// BoxLo and BoxHi bound the region in reduced coordinates.
	BoxLo []float64 `json:"box_lo"`
	BoxHi []float64 `json:"box_hi"`
	// OutrankIDs lists the records outranking the focal here (present only
	// when the request set outrank_ids).
	OutrankIDs []int64 `json:"outrank_ids,omitempty"`
}

// QueryStats is the wire form of repro.Stats. For a cached answer these
// are the counters of the original computation.
type QueryStats struct {
	// CPUMicros is the computation's CPU time in microseconds.
	CPUMicros int64 `json:"cpu_us"`
	// IOPages is the number of simulated page accesses.
	IOPages int64 `json:"io_pages"`
	// RecordsAccessed is n (BA/FCA) or n_a (AA) in the paper's accounting.
	RecordsAccessed int64 `json:"records_accessed"`
	// Algorithm names the strategy that computed the answer.
	Algorithm string `json:"algorithm"`
}

// BatchResponse is the body of a successful POST /v1/batch; Results align
// with the requested focal order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// StatsResponse is the body of GET /v1/stats. Datasets carries one entry
// per served dataset; Dataset and Engine mirror the entry unqualified
// requests resolve to (the sole dataset, or "default") for single-dataset
// deployments and older clients, and are zero when no such dataset exists.
type StatsResponse struct {
	Dataset  DatasetStats            `json:"dataset"`
	Engine   repro.EngineStats       `json:"engine"`
	Datasets map[string]DatasetEntry `json:"datasets"`
	Server   ServerStats             `json:"server"`
}

// DatasetEntry is one dataset's slice of GET /v1/stats.
type DatasetEntry struct {
	Dataset DatasetStats      `json:"dataset"`
	Engine  repro.EngineStats `json:"engine"`
	// Version is the dataset's mutation version (1 at attach, +1 per
	// successful mutate).
	Version uint64 `json:"version"`
	// Latency reports the dataset's query-latency quantiles over the most
	// recent successful /v1/query requests; absent until a query completes.
	Latency *LatencyStats `json:"latency,omitempty"`
	// Admission reports the dataset's admission-control counters; absent
	// when the server runs without WithAdmission or before the dataset's
	// first gated request.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// CostModel reports the dataset's per-class service-time estimates —
	// what the admission controller charges requests of each shape; absent
	// until an execution completes.
	CostModel []CostClassStats `json:"cost_model,omitempty"`
	// WAL reports the dataset's write-ahead-log extent; absent when the
	// server runs without WithMutationLog or the dataset has no log yet.
	WAL *WALStats `json:"wal,omitempty"`
	// Storage reports how the dataset's records and index are held: heap
	// (decoded into process memory) or mmap (served zero-copy from a
	// read-only mapping of a v2 snapshot), with the footprint of each.
	Storage repro.StorageStats `json:"storage"`
}

// WALStats is a dataset's write-ahead-log slice of GET /v1/stats.
type WALStats struct {
	// Records and Bytes are the log's current record count and file size.
	Records int64 `json:"wal_records"`
	Bytes   int64 `json:"wal_bytes"`
	// LastCompaction is when a snapshot last superseded log records;
	// absent before the first compaction of this process.
	LastCompaction *time.Time `json:"last_compaction,omitempty"`
}

// DatasetStats describes one served dataset.
type DatasetStats struct {
	// Records and Dim are the dataset's cardinality and dimensionality.
	Records int `json:"records"`
	Dim     int `json:"dim"`
	// Fingerprint is the dataset content digest that keys the result cache.
	Fingerprint string `json:"fingerprint"`
}

// DatasetInfo is one row of GET /v1/datasets.
type DatasetInfo struct {
	// Name addresses the dataset in query, batch and admin requests.
	Name string `json:"name"`
	// Records, Dim and Fingerprint describe the dataset content.
	Records     int    `json:"records"`
	Dim         int    `json:"dim"`
	Fingerprint string `json:"fingerprint"`
	// Version is the dataset's mutation version (1 at attach, +1 per
	// successful mutate).
	Version uint64 `json:"version"`
}

// DatasetsResponse is the body of GET /v1/datasets, sorted by name.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// MutateResponse is the body of a successful mutate: the dataset's new
// version counter and content fingerprint (the engine's result cache keys
// on the fingerprint, so the version change also invalidates every cached
// answer), plus the post-mutation record count and the batch composition.
type MutateResponse struct {
	Dataset     string `json:"dataset"`
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Records     int    `json:"records"`
	Inserted    int    `json:"inserted"`
	Deleted     int    `json:"deleted"`
}

// ServerStats reports the HTTP-layer counters.
type ServerStats struct {
	// Requests counts every request routed to a handler since start.
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a 4xx or 5xx status.
	Errors int64 `json:"errors"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// CoalescedQueries and CoalescedGroups count the queries executed
	// through a coalesced group and the groups executed (see
	// WithCoalescing); both stay zero with coalescing disabled.
	CoalescedQueries int64 `json:"coalesced_queries"`
	CoalescedGroups  int64 `json:"coalesced_groups"`
	// Admitted, ShedQueueFull and ShedDeadline are the admission-control
	// totals (see WithAdmission), cumulative across dataset detach and
	// version swaps; all zero with admission disabled. ShedQuota counts
	// requests rejected by the per-client rate quota (see WithQuota).
	Admitted      int64 `json:"admitted"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	ShedQuota     int64 `json:"shed_quota"`
	// AdmissionTiers breaks the admission totals down by scheduling tier,
	// keyed by tier name; absent with admission disabled.
	AdmissionTiers map[string]TierTotals `json:"admission_tiers,omitempty"`
}

// TierTotals is one tier's slice of the server-level admission totals.
type TierTotals struct {
	Admitted      int64 `json:"admitted"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
}

// handleQuery serves POST /v1/query. With coalescing enabled
// (WithCoalescing) the query joins the open group for its dataset and
// options and waits for the shared execution; either way the reported
// latency is measured from handler entry, so it includes any coalescing
// wait. The request's priority tier and cost class steer admission; the
// per-client quota (WithQuota) is checked first, so a rate-limited
// client never occupies queue state.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.Options()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if se := s.quotaCheck(clientID(r, req.Client)); se != nil {
		s.fail(w, se.status, se)
		return
	}
	eng, name, release, err := s.reg.resolve(req.Dataset)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	tier := req.Priority.Tier()
	var res *repro.Result
	if s.coal != nil {
		// Admission happens per coalesced GROUP (one unit per shared
		// execution, at the best tier among its waiters), inside the
		// coalescer; waiters shed individually.
		res, err = s.coalescedQuery(ctx, name, eng, &req, opts, tier)
	} else {
		var admitRelease func()
		admitRelease, err = s.admit(ctx, name, ticketFor(tier, classOf(opts, 1)))
		if err == nil {
			res, err = s.directQuery(ctx, name, eng, &req, opts)
			admitRelease()
		}
	}
	if err != nil {
		s.fail(w, queryStatus(err), err)
		return
	}
	s.recordLatency(name, time.Since(began))
	s.reply(w, http.StatusOK, convertResult(res, req.MaxRegions))
}

// directQuery executes one query immediately on the resolved engine — the
// uncoalesced path, also the coalescer's fallback when a detach races
// group creation — and feeds the execution time back into the cost model.
func (s *Server) directQuery(ctx context.Context, name string, eng *repro.Engine, req *QueryRequest, opts repro.QueryOptions) (*repro.Result, error) {
	began := time.Now()
	var res *repro.Result
	var err error
	if req.Focal != nil {
		res, err = eng.QueryOpts(ctx, *req.Focal, opts)
	} else {
		res, err = eng.QueryPointOpts(ctx, req.Point, opts)
	}
	if err == nil {
		s.recordCost(name, classOf(opts, 1), time.Since(began))
	}
	return res, err
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Focals) > s.maxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the limit of %d", len(req.Focals), s.maxBatch))
		return
	}
	opts, err := req.Options()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if se := s.quotaCheck(clientID(r, req.Client)); se != nil {
		s.fail(w, se.status, se)
		return
	}
	eng, name, release, err := s.reg.resolve(req.Dataset)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// A batch is one admission unit: it already executes as one shared
	// computation on the engine's worker pool. Its cost class carries the
	// batch-size bucket, so the controller charges it what batches of
	// this shape have actually cost.
	class := classOf(opts, len(req.Focals))
	admitRelease, err := s.admit(ctx, name, ticketFor(req.Priority.Tier(), class))
	if err != nil {
		s.fail(w, queryStatus(err), err)
		return
	}
	execBegan := time.Now()
	results, err := eng.QueryBatchOpts(ctx, req.Focals, opts)
	admitRelease()
	if err != nil {
		s.fail(w, queryStatus(err), err)
		return
	}
	s.recordCost(name, class, time.Since(execBegan))
	resp := BatchResponse{Results: make([]QueryResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = convertResult(res, req.MaxRegions)
	}
	s.reply(w, http.StatusOK, resp)
}

// handleStats serves GET /v1/stats: one entry per dataset (cache counters
// are per dataset, since each engine has its own cache), plus the
// single-dataset mirror fields and the HTTP-layer counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Datasets: make(map[string]DatasetEntry),
		Server: ServerStats{
			Requests:         s.requests.Load(),
			Errors:           s.errors.Load(),
			UptimeSeconds:    time.Since(s.start).Seconds(),
			CoalescedQueries: s.coalescedQueries.Load(),
			CoalescedGroups:  s.coalescedGroups.Load(),
			Admitted:         s.admitted.Load(),
			ShedQueueFull:    s.shedQueueFull.Load(),
			ShedDeadline:     s.shedDeadline.Load(),
			ShedQuota:        s.shedQuota.Load(),
		},
	}
	if s.AdmissionEnabled() {
		tiers := make(map[string]TierTotals, numTiers)
		for t := 0; t < numTiers; t++ {
			tiers[apiv1.TierName(t)] = TierTotals{
				Admitted:      s.tierAdmitted[t].Load(),
				ShedQueueFull: s.tierShedQueueFull[t].Load(),
				ShedDeadline:  s.tierShedDeadline[t].Load(),
			}
		}
		resp.Server.AdmissionTiers = tiers
	}
	s.reg.forEach(func(name string, eng *repro.Engine, version uint64, stats repro.EngineStats) {
		ds := eng.Dataset()
		resp.Datasets[name] = DatasetEntry{
			Dataset: DatasetStats{
				Records:     ds.Len(),
				Dim:         ds.Dim(),
				Fingerprint: ds.Fingerprint(),
			},
			// Cumulative across versions: mutations swap engines in, but
			// the counters must not reset with each swap.
			Engine:    stats,
			Version:   version,
			Latency:   s.latencyStats(name),
			Admission: s.admissionStats(name),
			CostModel: s.costStats(name),
			WAL:       s.walStats(name),
			Storage:   ds.Storage(),
		}
	})
	// The legacy mirror fields reuse the per-dataset entry captured above,
	// so one response is always self-consistent (a second Stats() call, or
	// a dataset attached between the snapshot and the resolve, would let
	// the mirror disagree with the map).
	if _, name, release, err := s.reg.resolve(""); err == nil {
		release()
		if entry, ok := resp.Datasets[name]; ok {
			resp.Dataset = entry.Dataset
			resp.Engine = entry.Engine
		}
	}
	s.reply(w, http.StatusOK, resp)
}

// handleListDatasets serves GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	resp := DatasetsResponse{Datasets: []DatasetInfo{}}
	s.reg.forEach(func(name string, eng *repro.Engine, version uint64, _ repro.EngineStats) {
		ds := eng.Dataset()
		resp.Datasets = append(resp.Datasets, DatasetInfo{
			Name:        name,
			Records:     ds.Len(),
			Dim:         ds.Dim(),
			Fingerprint: ds.Fingerprint(),
			Version:     version,
		})
	})
	s.reply(w, http.StatusOK, resp)
}

// handleAttachDataset serves POST /v1/datasets: load a snapshot through
// the configured loader and register it. 501 without a loader, 409 on a
// name collision, 422 when the snapshot cannot be loaded.
func (s *Server) handleAttachDataset(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		s.fail(w, http.StatusNotImplemented, fmt.Errorf("snapshot attach is not enabled on this server"))
		return
	}
	var req AttachRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !ValidDatasetName(req.Name) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid dataset name %q", req.Name))
		return
	}
	eng, err := s.loader(req.Path)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("loading snapshot %q: %w", req.Path, err))
		return
	}
	if err := s.reg.Add(req.Name, eng); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDatasetExists) {
			status = http.StatusConflict
		}
		s.fail(w, status, err)
		return
	}
	ds := eng.Dataset()
	s.logf("server: attached dataset %q (%d records, fingerprint %s)", req.Name, ds.Len(), ds.Fingerprint())
	s.reply(w, http.StatusCreated, DatasetInfo{
		Name:        req.Name,
		Records:     ds.Len(),
		Dim:         ds.Dim(),
		Fingerprint: ds.Fingerprint(),
		Version:     1,
	})
}

// handleMutateDataset serves POST /v1/datasets/{name}/mutate: apply a
// batch of point inserts/deletes to the named dataset, atomically swapping
// in the successor engine version while queries pinned to the previous
// version drain against it. Like attach and detach it is gated on
// WithSnapshotLoader — rewriting the served catalog is at least as
// destructive as detaching it, so a plain server.New deployment exposes
// no mutating endpoint at all (the daemon always enables all three).
// 404 for unknown datasets, 400 for an invalid batch (the dataset is
// then unchanged).
func (s *Server) handleMutateDataset(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		s.fail(w, http.StatusNotImplemented, fmt.Errorf("dataset administration is not enabled on this server"))
		return
	}
	name := r.PathValue("name")
	var req MutateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Ops) > s.maxOps {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d ops exceeds the limit of %d", len(req.Ops), s.maxOps))
		return
	}
	ops, inserted, deleted := req.EngineOps()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	eng, version, err := s.reg.Mutate(ctx, name, func(cur *repro.Engine, curVersion uint64) (*repro.Engine, error) {
		next, err := cur.Apply(ctx, ops)
		if err != nil {
			return nil, err
		}
		// Ack-after-append: the batch reaches the write-ahead log before
		// the version swap that acknowledges it. If the append fails the
		// mutation fails and the dataset is unchanged — the client can
		// retry; nothing was acknowledged, nothing is lost.
		if s.mutLog != nil {
			rec := MutationRecord{
				BaseVersion:     curVersion,
				BaseFingerprint: cur.Dataset().Fingerprint(),
				NewFingerprint:  next.Dataset().Fingerprint(),
				Ops:             ops,
			}
			if err := s.mutLog.Append(name, rec); err != nil {
				return nil, fmt.Errorf("mutation log append: %w", err)
			}
		}
		return next, nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrDatasetNotFound):
			s.fail(w, http.StatusNotFound, err)
		default:
			s.fail(w, queryStatus(err), err)
		}
		return
	}
	ds := eng.Dataset()
	s.logf("server: mutated dataset %q to version %d (%+d/-%d records, now %d, fingerprint %s)",
		name, version, inserted, deleted, ds.Len(), ds.Fingerprint())
	if hook := s.mutateHook; hook != nil {
		s.spawnHook(func() { hook(name, eng, version) })
	}
	s.reply(w, http.StatusOK, MutateResponse{
		Dataset:     name,
		Version:     version,
		Fingerprint: ds.Fingerprint(),
		Records:     ds.Len(),
		Inserted:    inserted,
		Deleted:     deleted,
	})
}

// handleDetachDataset serves DELETE /v1/datasets/{name}: the name stops
// resolving immediately and the handler waits (bounded by the request
// timeout) for the dataset's in-flight queries to drain. Like attach, it
// is gated on WithSnapshotLoader — a server without the admin loader
// exposes no mutating endpoint at all (server.New alone must not let a
// client detach the sole dataset and brick the service).
func (s *Server) handleDetachDataset(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		s.fail(w, http.StatusNotImplemented, fmt.Errorf("dataset administration is not enabled on this server"))
		return
	}
	name := r.PathValue("name")
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := s.reg.Remove(ctx, name); err != nil {
		switch {
		case errors.Is(err, ErrDatasetNotFound):
			s.fail(w, http.StatusNotFound, err)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			// Detached, but stragglers outlived the drain window.
			s.fail(w, http.StatusGatewayTimeout, err)
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.dropLatency(name)
	s.dropGate(name)
	s.logf("server: detached dataset %q", name)
	s.reply(w, http.StatusOK, map[string]string{"status": "removed", "dataset": name})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, map[string]string{"status": "ok"})
}

// requestContext derives the handler context, applying the per-request
// timeout when one is configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

// decode parses and validates the JSON request body into dst through the
// versioned envelope's shared path (apiv1.Decode), answering 400 itself
// on malformed or invalid input and reporting whether the handler should
// proceed. The server contributes only the body-size bound; everything
// about the payload itself is the envelope's.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst apiv1.Request) bool {
	if err := apiv1.Decode(http.MaxBytesReader(w, r.Body, s.maxBody), dst); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// reply writes a JSON response.
func (s *Server) reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

// fail writes a JSON error response and counts it. A shed rejection
// (admission control) additionally advertises its Retry-After so clients
// know when the backlog they were rejected behind should have drained.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	var shed *shedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", strconv.Itoa(shed.retryAfter))
	}
	s.logf("server: %d: %v", status, err)
	s.reply(w, status, ErrorResponse{Error: err.Error()})
}

// queryStatus maps a query error to an HTTP status: request-caused
// failures (repro.ErrBadQuery) are 400, admission sheds carry their own
// status (429 queue-full / 503 deadline), deadline overruns 504, client
// disconnects 408, and anything else is a genuine internal failure, 500 —
// so 5xx-based alerting sees engine bugs rather than blaming the client.
func queryStatus(err error) int {
	var shed *shedError
	switch {
	case errors.Is(err, repro.ErrBadQuery):
		return http.StatusBadRequest
	case errors.As(err, &shed):
		return shed.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// convertResult maps a repro.Result to its wire form, truncating regions
// to maxRegions when positive.
func convertResult(res *repro.Result, maxRegions int) QueryResponse {
	out := QueryResponse{
		KStar:        res.KStar,
		Dominators:   res.Dominators,
		MinOrder:     res.MinOrder,
		Cached:       res.Cached,
		TotalRegions: len(res.Regions),
		Stats: QueryStats{
			CPUMicros:       res.Stats.CPUTime.Microseconds(),
			IOPages:         res.Stats.IO,
			RecordsAccessed: res.Stats.IncomparableAccessed,
			Algorithm:       res.Stats.Algorithm.String(),
		},
	}
	n := len(res.Regions)
	if maxRegions > 0 && maxRegions < n {
		n = maxRegions
	}
	out.Regions = make([]RegionJSON, n)
	for i := 0; i < n; i++ {
		reg := &res.Regions[i]
		out.Regions[i] = RegionJSON{
			Rank:        reg.Rank,
			Order:       reg.Order,
			Witness:     reg.Witness,
			QueryVector: reg.QueryVector,
			BoxLo:       reg.BoxLo,
			BoxHi:       reg.BoxHi,
			OutrankIDs:  reg.OutrankIDs,
		}
	}
	return out
}
