package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
)

// WithCoalescing makes the server hold each /v1/query request for up to
// window, merging the concurrent requests that target the same dataset
// under the same options into one shared batch (Engine.QueryGroup): the
// group pays the dominance-classification prefix once, and each waiter
// gets exactly the result it would have computed alone (see
// repro.WithBatchSharing for the determinism contract). A few
// milliseconds is the useful range — enough to catch a burst, small
// against a query's own latency. The default (and any window <= 0) is
// off: every request executes immediately and independently.
//
// Coalescing trades a bounded first-request delay for burst throughput;
// it pays off when concurrent clients query the same dataset region, and
// costs one window of added latency when they do not. Cancellation is
// per waiter: a client disconnecting leaves the rest of its group
// unharmed, and the group's execution is cancelled only when every
// waiter has gone.
func WithCoalescing(window time.Duration) Option {
	return func(s *Server) {
		if window > 0 {
			s.coalesceWindow = window
		}
	}
}

// CoalescingWindow reports the configured coalescing window (0 when
// disabled).
func (s *Server) CoalescingWindow() time.Duration { return s.coalesceWindow }

// coalescer collects compatible concurrent queries into groups. Keys
// combine the resolved dataset name, the engine instance the requests
// resolved to (a mutation swap changes the pointer, so requests never
// join a group executing against a retired version), and the option
// signature; MaxRegions is excluded because truncation happens per
// waiter, after the shared computation.
type coalescer struct {
	s      *Server
	window time.Duration

	mu     sync.Mutex
	groups map[string]*coalesceGroup
}

// coalesceGroup is one open window's worth of compatible queries. Lock
// order: coalescer.mu before coalesceGroup.mu.
type coalesceGroup struct {
	c       *coalescer
	key     string
	name    string // resolved dataset name (admission gate + registry pin)
	eng     *repro.Engine
	release func()             // the group's own registry pin (drain correctness)
	opts    repro.QueryOptions // shared by construction: the key encodes them
	timer   *time.Timer

	mu         sync.Mutex
	focals     []repro.Focal
	replies    []chan coalesceReply
	refs       int           // waiters still listening
	tierRefs   [numTiers]int // still-listening waiters by declared tier
	execCancel context.CancelFunc
}

// coalesceReply is one waiter's share of a group execution; exactly one
// field is set.
type coalesceReply struct {
	res *repro.Result
	err error
}

// coalesceKey builds the group key for a request that resolved to eng.
// Priority is deliberately excluded: requests of different tiers merge
// into one group (the answer is identical), and the group is admitted at
// the best tier among its waiters.
func coalesceKey(name string, eng *repro.Engine, req *QueryRequest) string {
	return name + "|" + fmt.Sprintf("%p", eng) + "|" + req.Algorithm + "|" +
		strconv.Itoa(req.Tau) + "|" + strconv.FormatBool(req.OutrankIDs)
}

// enqueue adds one query to the open group for key, creating the group
// (and starting its window timer) if none is open. It returns the
// waiter's reply channel and a drop function to call when the waiter
// abandons the wait. ok is false when the group could not pin the
// dataset (a detach won the race); the caller then executes directly.
func (c *coalescer) enqueue(name, key string, eng *repro.Engine, opts repro.QueryOptions, f repro.Focal, tier int) (ch <-chan coalesceReply, drop func(), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[key]
	if g == nil {
		// The group outlives its waiters' handlers, so it holds its own
		// registry pin: a detach issued mid-window drains after — not
		// during — the group's execution. The pin is by name, so it stays
		// valid across mutation swaps of the same dataset.
		_, release, err := c.s.reg.Acquire(name)
		if err != nil {
			return nil, nil, false
		}
		g = &coalesceGroup{c: c, key: key, name: name, eng: eng, release: release, opts: opts}
		g.timer = time.AfterFunc(c.window, func() { c.run(g) })
		c.groups[key] = g
	}
	reply := make(chan coalesceReply, 1)
	g.mu.Lock()
	g.focals = append(g.focals, f)
	g.replies = append(g.replies, reply)
	g.refs++
	g.tierRefs[tier]++
	full := len(g.focals) >= c.s.maxBatch
	g.mu.Unlock()
	if full && g.timer.Stop() {
		// The group reached the batch cap before its window closed: seal
		// and run it now (Stop returning true means the timer had not
		// fired, so this goroutine owns the run).
		go c.run(g)
	}
	return reply, func() { g.drop(tier) }, true
}

// run executes a sealed group and fans the per-member results back to the
// waiters still listening. It runs on the window timer's goroutine (or a
// fresh one when the batch cap sealed the group early).
func (c *coalescer) run(g *coalesceGroup) {
	c.mu.Lock()
	if c.groups[g.key] == g {
		delete(c.groups, g.key)
	}
	c.mu.Unlock()
	defer g.release()

	// The execution context is the server's own (request-timeout bounded),
	// not any waiter's: waiters come and go independently, and one
	// disconnecting must not cancel its neighbours' shared computation.
	ctx := context.Background()
	var cancel context.CancelFunc
	if c.s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.s.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	g.mu.Lock()
	focals := g.focals
	replies := g.replies
	g.execCancel = cancel
	abandoned := g.refs == 0
	g.mu.Unlock()
	if abandoned {
		// Every waiter gave up before the window closed; skip the work.
		return
	}
	// The sealed group is ONE admission unit: however many waiters merged
	// into it, the shared execution occupies one grant — coalescing under
	// overload admits bursts at the cost of single queries. The scheduler
	// sees it at the BEST tier among its still-listening waiters (one
	// interactive passenger lifts the whole bus) with the summed cost of
	// the queries it merged; the counters bill each waiter at its own
	// declared tier. The group's own ctx (server-timeout bounded) governs
	// its queue wait; waiters with tighter deadlines shed themselves
	// individually while the group is queued (see coalescedQuery).
	g.mu.Lock()
	tk := admitTicket{tier: tierBulk, class: classOf(g.opts, 1), scale: g.refs}
	for t := 0; t < numTiers; t++ {
		if g.tierRefs[t] > 0 {
			tk.count[t] = int64(g.tierRefs[t])
			if t < tk.tier {
				tk.tier = t
			}
		}
	}
	g.mu.Unlock()
	if tk.scale < 1 {
		tk.scale = 1
	}
	admitRelease, err := c.s.admit(ctx, g.name, tk)
	if err != nil {
		for _, ch := range replies {
			ch <- coalesceReply{err: err}
		}
		return
	}
	defer admitRelease()
	c.s.coalescedQueries.Add(int64(len(focals)))
	c.s.coalescedGroups.Add(1)
	execBegan := time.Now()
	out := g.eng.QueryGroupOpts(ctx, focals, g.opts)
	// One per-query cost sample per execution: the shared run's elapsed
	// time divided across the queries it answered, recorded under the
	// single-query class the group's admission estimate is built from.
	if n := len(focals); n > 0 {
		c.s.recordCost(g.name, classOf(g.opts, 1), time.Since(execBegan)/time.Duration(n))
	}
	for i, ch := range replies {
		// Buffered(1) and written exactly once: never blocks, even for
		// waiters that stopped listening.
		ch <- coalesceReply{res: out[i].Result, err: out[i].Err}
	}
}

// drop records that one waiter (of the given declared tier) abandoned
// the wait (client disconnect or request deadline). When the last waiter
// leaves, the group's execution — if it already started — is cancelled;
// otherwise run notices the empty group and skips the work.
func (g *coalesceGroup) drop(tier int) {
	g.mu.Lock()
	g.refs--
	g.tierRefs[tier]--
	cancel := g.execCancel
	last := g.refs == 0
	g.mu.Unlock()
	if last && cancel != nil {
		cancel()
	}
}

// coalescedQuery runs one /v1/query through the coalescer, waiting for
// the group's shared execution, and falls back to direct execution when
// the dataset is being detached. With admission control on, the waiter is
// individually deadline-aware: while its group sits in the admission
// queue, a waiter whose own deadline can no longer cover the estimated
// service time sheds alone (503 + Retry-After) instead of burning its
// remaining budget waiting — the rest of the group is unharmed. Like the
// gate's own shedder, the estimate is re-taken whenever the timer fires,
// so a backlog that drained faster than forecast keeps the waiter alive.
func (s *Server) coalescedQuery(ctx context.Context, name string, eng *repro.Engine, req *QueryRequest, opts repro.QueryOptions, tier int) (*repro.Result, error) {
	var f repro.Focal
	if req.Focal != nil {
		f.Index = *req.Focal
	} else {
		f.Point = req.Point
	}
	class := classOf(opts, 1)
	ch, drop, ok := s.coal.enqueue(name, coalesceKey(name, eng, req), eng, opts, f, tier)
	if !ok {
		// Detach race: execute directly, under the same admission rules
		// as the uncoalesced path.
		release, err := s.admit(ctx, name, ticketFor(tier, class))
		if err != nil {
			return nil, err
		}
		defer release()
		return s.directQuery(ctx, name, eng, req, opts)
	}
	var (
		shedTimer *time.Timer
		shedC     <-chan time.Time
	)
	deadline, hasDeadline := ctx.Deadline()
	arm := func() bool {
		est := time.Duration(s.costEstimate(name, class) * float64(time.Millisecond))
		budget := time.Until(deadline) - est
		if budget <= 0 {
			return false
		}
		if shedTimer == nil {
			shedTimer = time.NewTimer(budget)
			shedC = shedTimer.C
		} else {
			shedTimer.Reset(budget)
		}
		return true
	}
	if s.AdmissionEnabled() && hasDeadline {
		if !arm() {
			shedC = closedTimeC
		}
		if shedTimer != nil {
			defer shedTimer.Stop()
		}
	}
	for {
		select {
		case rep := <-ch:
			return rep.res, rep.err
		case <-shedC:
			// Re-evaluate on a fresh estimate before giving up (unless the
			// budget was already spent at enqueue).
			if shedC != closedTimeC && arm() {
				continue
			}
			drop()
			var count [numTiers]int64
			count[tier] = 1
			if g := s.gate(name); g != nil {
				s.countShedDeadline(g, count)
			} else {
				s.shedDeadline.Add(1)
				s.tierShedDeadline[tier].Add(1)
			}
			return nil, &shedError{
				status:     http.StatusServiceUnavailable,
				retryAfter: s.coalesceRetryAfter(name),
				reason:     "deadline cannot be met in queue",
			}
		case <-ctx.Done():
			drop()
			return nil, ctx.Err()
		}
	}
}

// closedTimeC is an already-fired time channel: a waiter whose budget is
// spent before it even starts waiting sheds on the first select pass.
var closedTimeC = func() <-chan time.Time {
	ch := make(chan time.Time)
	close(ch)
	return ch
}()

// coalesceRetryAfter is the waiter-side Retry-After: queue-drain time of
// the dataset's gate, or 1s before any latency sample exists.
func (s *Server) coalesceRetryAfter(name string) int {
	if g := s.gate(name); g != nil {
		g.mu.Lock()
		queuedUnits := g.queuedUnits
		limit := g.limit
		g.mu.Unlock()
		return s.retryAfterSeconds(name, queuedUnits, limit)
	}
	return 1
}
