package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/server/apiv1"
)

// postWithHeaders is post() plus arbitrary headers (the quota tests need
// X-Client-ID).
func postWithHeaders(t testing.TB, h http.Handler, path string, body any, hdr map[string]string) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(raw)))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestPriorityEvictionOrder pins the queue-full displacement rule
// deterministically, bypassing HTTP: with the only slot held and the
// queue full of lower-tier waiters, an interactive arrival evicts the
// newest bulk waiter (429), and once capacity frees, dispatch grants
// strictly best-tier-first.
func TestPriorityEvictionOrder(t *testing.T) {
	srv := newAdmissionServer(t, 20*time.Microsecond,
		WithAdmission(1, 2), WithAging(0), WithRequestTimeout(10*time.Second))

	hold, err := srv.admit(context.Background(), DefaultDataset, ticketFor(tierNormal, costClass{}))
	if err != nil {
		t.Fatalf("occupier admit: %v", err)
	}

	type outcome struct {
		tier int
		err  error
		at   time.Time
	}
	results := make(chan outcome, 3)
	wait := func(tier int) {
		release, err := srv.admit(context.Background(), DefaultDataset, ticketFor(tier, costClass{}))
		results <- outcome{tier: tier, err: err, at: time.Now()}
		if err == nil {
			time.Sleep(5 * time.Millisecond) // hold briefly so grant order is observable
			release()
		}
	}
	g := srv.gate(DefaultDataset)
	queued := func(n int) {
		waitUntil(t, 5*time.Second, func() bool {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.queued == n
		})
	}

	go wait(tierBulk)
	queued(1)
	go wait(tierNormal)
	queued(2)
	// Queue full at depth 2. The interactive arrival must displace the
	// bulk waiter rather than be rejected.
	go wait(tierInteractive)

	first := <-results
	if first.tier != tierBulk || first.err == nil {
		t.Fatalf("first outcome: tier %d err %v, want the bulk waiter evicted", first.tier, first.err)
	}
	var shed *shedError
	if !asShed(first.err, &shed) || shed.status != http.StatusTooManyRequests {
		t.Fatalf("bulk eviction error = %v, want a 429 shedError", first.err)
	}
	if g.tierShedQueueFull[tierBulk].Load() != 1 {
		t.Errorf("bulk shed_queue_full = %d, want 1", g.tierShedQueueFull[tierBulk].Load())
	}

	hold()
	second := <-results
	third := <-results
	if second.err != nil || third.err != nil {
		t.Fatalf("surviving waiters errored: %v / %v", second.err, third.err)
	}
	if second.tier != tierInteractive || third.tier != tierNormal {
		t.Errorf("grant order %d then %d, want interactive (%d) before normal (%d)",
			second.tier, third.tier, tierInteractive, tierNormal)
	}
}

// asShed is errors.As for *shedError without importing errors twice.
func asShed(err error, target **shedError) bool {
	se, ok := err.(*shedError)
	if ok {
		*target = se
	}
	return ok
}

// TestPriorityAgingProperty is the starvation-freedom property test: under
// a sustained stream of interactive traffic saturating a 1-slot gate, a
// single bulk request still completes, because aging promotes it tier by
// tier instead of letting strict priority starve it forever. Run under
// -race this also exercises the promotion timers against dispatch.
func TestPriorityAgingProperty(t *testing.T) {
	srv := newAdmissionServer(t, 200*time.Microsecond,
		WithAdmission(1, 8), WithAging(150*time.Millisecond), WithRequestTimeout(20*time.Second))

	const feeders = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var interactiveOK atomic.Int64
	for i := 0; i < feeders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				focal := (i*97 + n) % 100
				code, _ := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 1, Priority: "interactive"})
				if code == http.StatusOK {
					interactiveOK.Add(1)
				}
			}
		}(i)
	}

	// Give the feeders a head start so the gate is saturated before the
	// bulk request arrives.
	waitUntil(t, 5*time.Second, func() bool { return interactiveOK.Load() >= 5 })

	bulkStart := time.Now()
	focal := 7
	code, body := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 1, Priority: "bulk"})
	bulkLatency := time.Since(bulkStart)
	close(stop)
	wg.Wait()

	if code != http.StatusOK {
		t.Fatalf("bulk request under interactive pressure = %d, want 200: %s", code, body)
	}
	// The aging bound: two promotions (bulk → normal → interactive) at
	// 150ms each, plus a few queued interactive services ahead of it.
	// 10s is an order of magnitude of slack for -race on a loaded box —
	// the point is "bounded", not "fast".
	if bulkLatency > 10*time.Second {
		t.Errorf("bulk request took %v under interactive pressure: aging did not bound starvation", bulkLatency)
	}

	// Per-tier accounting reached the stats surface.
	code, raw := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	adm := stats.Datasets[DefaultDataset].Admission
	if adm == nil {
		t.Fatal("no admission stats for gated dataset")
	}
	if adm.Tiers["interactive"].Admitted == 0 {
		t.Error("per-tier stats: no interactive admissions recorded")
	}
	if adm.Tiers["bulk"].Admitted == 0 {
		t.Error("per-tier stats: the completed bulk request was not billed to its tier")
	}
	if got := stats.Server.AdmissionTiers["bulk"].Admitted; got == 0 {
		t.Error("server totals: no bulk admissions recorded")
	}
}

// TestPriorityAnswerIdentical: the scheduler may reorder execution but
// must never change an answer — the same focal yields a byte-identical
// result set at every priority.
func TestPriorityAnswerIdentical(t *testing.T) {
	srv := newAdmissionServer(t, 0, WithAdmission(2, 4))
	focal := 11
	var bodies []string
	for _, prio := range []string{"", "interactive", "normal", "bulk"} {
		code, body := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 2, Priority: apiv1.Priority(prio)})
		if code != http.StatusOK {
			t.Fatalf("priority %q: status %d: %s", prio, code, body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		resp.Stats.CPUMicros = 0 // timing varies; the answer must not
		resp.Cached = false      // later repeats may hit the result cache
		canon, _ := json.Marshal(resp)
		bodies = append(bodies, string(canon))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("priority path %d changed the answer:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// TestQuotaShedding: a client over its token bucket is rejected 429 with
// Retry-After before touching admission, other clients are unaffected,
// and the shed is counted.
func TestQuotaShedding(t *testing.T) {
	ds, err := repro.GenerateDataset("IND", 200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	// 0.01 rps, burst 1: one request drains the bucket and the refill
	// (one token per 100s) is negligible for the test's lifetime, even
	// when -race slows each query to ~1s.
	srv, err := New(eng, WithLogger(nil), WithQuota(0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	focal := 3

	code, body := postWithHeaders(t, srv, "/v1/query", QueryRequest{Focal: &focal}, map[string]string{"X-Client-ID": "tenant-a"})
	if code != http.StatusOK {
		t.Fatalf("first tenant-a request = %d: %s", code, body)
	}
	raw, _ := json.Marshal(QueryRequest{Focal: &focal})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(raw)))
	req.Header.Set("X-Client-ID", "tenant-a")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second tenant-a request = %d, want 429: %s", rec.Code, rec.Body.Bytes())
	}
	checkRetryAfter(t, rec)

	// A different client has its own bucket; the body's "client" field
	// identifies it when no header is set.
	code, body = post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Client: "tenant-b"})
	if code != http.StatusOK {
		t.Fatalf("tenant-b request = %d, want 200 (own bucket): %s", code, body)
	}

	// The header wins over the body field: claiming to be tenant-c in the
	// body does not escape tenant-a's empty bucket.
	code, body = postWithHeaders(t, srv, "/v1/query", QueryRequest{Focal: &focal, Client: "tenant-c"}, map[string]string{"X-Client-ID": "tenant-a"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant-a via header = %d, want 429 despite body client: %s", code, body)
	}

	// Anonymous requests share one bucket.
	if code, _ = post(t, srv, "/v1/query", QueryRequest{Focal: &focal}); code != http.StatusOK {
		t.Fatalf("first anonymous request = %d, want 200", code)
	}
	if code, _ = post(t, srv, "/v1/query", QueryRequest{Focal: &focal}); code != http.StatusTooManyRequests {
		t.Fatalf("second anonymous request = %d, want 429 (shared bucket)", code)
	}

	code, raw2 := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(raw2, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.ShedQuota < 3 {
		t.Errorf("shed_quota = %d, want >= 3", stats.Server.ShedQuota)
	}
}
