package server

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
)

// latWindow is the number of most-recent query latencies each dataset's
// overall ring retains for quantile estimation. 4096 eight-byte samples
// keep the per-dataset footprint at 32 KiB while making p99 meaningful
// (≈41 samples above it at a full ring).
const latWindow = 4096

// costWindow is the window of each per-class cost ring. Classes are
// narrow (one algorithm × τ-bucket × batch-size bucket), so 256 samples
// give a stable p50 without letting dozens of classes dominate memory.
const costWindow = 256

// minCostSamples is how many samples a class ring needs before its p50 is
// trusted as a cost estimate; below it the dataset's overall p50 is used.
// A handful of samples from a heavy class would otherwise whipsaw the
// admission arithmetic.
const minCostSamples = 8

// latRing is a fixed-size ring of latencies. Recording is O(1) under a
// mutex; quantiles sort a snapshot on demand (stats is called by
// /v1/stats, not on the query path).
type latRing struct {
	mu      sync.Mutex
	samples []float64 // milliseconds; len = configured window
	next    int
	filled  bool
	count   int64   // lifetime samples, not capped by the window
	max     float64 // lifetime maximum

	// Cached p50/p95 for the admission controller, which consults the
	// ring on every shed decision and must not pay a full sort each
	// time. Recomputed at most once per estRecompute, and only when
	// new samples arrived since the last computation.
	estAt    time.Time
	estCount int64
	estP50   float64
	estP95   float64
}

func newLatRing(window int) *latRing {
	return &latRing{samples: make([]float64, window)}
}

// estRecompute bounds how often estimate() re-sorts the ring. 100ms is
// far below the timescale on which a latency distribution drifts, and
// caps the estimator's cost at ~10 sorts/s however hot the shed path is.
const estRecompute = 100 * time.Millisecond

func (r *latRing) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.samples[r.next] = ms
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.count++
	if ms > r.max {
		r.max = ms
	}
	r.mu.Unlock()
}

// LatencyStats reports a dataset's query-latency distribution: quantiles
// over the most recent latWindow successful /v1/query requests (measured
// from handler entry, so coalescing wait time is included), plus lifetime
// count and maximum.
type LatencyStats struct {
	// Count is the number of successful queries recorded since the dataset
	// was first served (not capped by the quantile window).
	Count int64 `json:"count"`
	// P50Ms, P95Ms and P99Ms are latency quantiles in milliseconds over
	// the most recent samples.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MaxMs is the lifetime maximum latency in milliseconds.
	MaxMs float64 `json:"max_ms"`
}

// stats computes the quantiles from a snapshot of the ring; nil when no
// sample was ever recorded.
func (r *latRing) stats() *LatencyStats {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	if n == 0 {
		r.mu.Unlock()
		return nil
	}
	snap := make([]float64, n)
	copy(snap, r.samples[:n])
	out := &LatencyStats{Count: r.count, MaxMs: r.max}
	r.mu.Unlock()
	sort.Float64s(snap)
	out.P50Ms = quantile(snap, 0.50)
	out.P95Ms = quantile(snap, 0.95)
	out.P99Ms = quantile(snap, 0.99)
	return out
}

// estimate returns cached p50/p95 over the ring (milliseconds; zeros
// when no sample was recorded) plus the lifetime sample count. Unlike
// stats it is cheap enough for the admission hot path: the sort reruns at
// most once per estRecompute.
func (r *latRing) estimate() (p50, p95 float64, count int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	if n == 0 {
		return 0, 0, 0
	}
	if r.count != r.estCount && time.Since(r.estAt) >= estRecompute {
		snap := make([]float64, n)
		copy(snap, r.samples[:n])
		sort.Float64s(snap)
		r.estP50 = quantile(snap, 0.50)
		r.estP95 = quantile(snap, 0.95)
		r.estAt = time.Now()
		r.estCount = r.count
	}
	return r.estP50, r.estP95, r.count
}

// quantile returns the nearest-rank q-quantile of ascending-sorted samples.
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// costClass keys one cost ring: the admission controller's belief about
// how expensive a request shaped like this is. Algorithm is the
// *requested* strategy (what the client controls, hence what groups
// requests of like cost), the τ and batch-size axes are bucketed
// logarithmically so a 4096-way class explosion cannot happen.
type costClass struct {
	alg    string
	tauB   int
	batchB int
}

// classOf buckets one request's shape. batch is the focal count (1 for
// /v1/query).
func classOf(o repro.QueryOptions, batch int) costClass {
	return costClass{alg: o.Algorithm.String(), tauB: logBucket(o.Tau), batchB: logBucket(batch - 1)}
}

// logBucket maps a non-negative magnitude to a coarse logarithmic bucket:
// 0, 1-3, 4-10, 11-100, >100.
func logBucket(n int) int {
	switch {
	case n <= 0:
		return 0
	case n <= 3:
		return 1
	case n <= 10:
		return 2
	case n <= 100:
		return 3
	default:
		return 4
	}
}

// String renders the class for the stats surface ("AA/tau1/batch0").
func (c costClass) String() string {
	return c.alg + "/tau" + strconv.Itoa(c.tauB) + "/batch" + strconv.Itoa(c.batchB)
}

// dsLatency is one dataset's latency state: the overall /v1/query ring
// (quantiles in /v1/stats, the cost model's baseline work unit) plus one
// cost ring per observed request class.
type dsLatency struct {
	overall *latRing

	mu      sync.Mutex
	classes map[costClass]*latRing
}

func newDSLatency() *dsLatency {
	return &dsLatency{overall: newLatRing(latWindow), classes: make(map[costClass]*latRing)}
}

func (d *dsLatency) class(c costClass) *latRing {
	d.mu.Lock()
	r := d.classes[c]
	if r == nil {
		r = newLatRing(costWindow)
		d.classes[c] = r
	}
	d.mu.Unlock()
	return r
}

// CostClassStats is one request class's slice of the dataset's cost model
// in GET /v1/stats: what the admission controller currently believes a
// request of this shape costs.
type CostClassStats struct {
	// Class names the (algorithm, τ-bucket, batch-size-bucket) key, e.g.
	// "AA/tau1/batch0".
	Class string `json:"class"`
	// EstimateMs is the class's current p50 service-time estimate.
	EstimateMs float64 `json:"estimate_ms"`
	// Samples is the lifetime sample count (the estimate is trusted from
	// 8 samples; below that the dataset's overall p50 is used instead).
	Samples int64 `json:"samples"`
}

// dsLat returns the named dataset's latency state, creating it on first
// use.
func (s *Server) dsLat(name string) *dsLatency {
	s.latMu.Lock()
	d := s.lat[name]
	if d == nil {
		d = newDSLatency()
		s.lat[name] = d
	}
	s.latMu.Unlock()
	return d
}

// recordLatency folds one successful query's handler latency into the
// named dataset's overall ring.
func (s *Server) recordLatency(name string, d time.Duration) {
	s.dsLat(name).overall.record(d)
}

// recordCost folds one execution's duration into its class ring — the
// cost model's learning path. Unlike recordLatency this measures the
// engine execution alone (no queueing or coalescing wait), so the
// estimate converges on service time rather than sojourn time.
func (s *Server) recordCost(name string, c costClass, d time.Duration) {
	s.dsLat(name).class(c).record(d)
}

// latencyStats returns the named dataset's latency quantiles, or nil when
// no query completed against it yet.
func (s *Server) latencyStats(name string) *LatencyStats {
	s.latMu.Lock()
	d := s.lat[name]
	s.latMu.Unlock()
	if d == nil {
		return nil
	}
	return d.overall.stats()
}

// latencyEstimate returns the named dataset's cached p50/p95 overall
// latency in milliseconds (zeros before any query completes) — the cost
// model's baseline work unit and the Retry-After drain estimate.
func (s *Server) latencyEstimate(name string) (p50, p95 float64) {
	s.latMu.Lock()
	d := s.lat[name]
	s.latMu.Unlock()
	if d == nil {
		return 0, 0
	}
	p50, p95, _ = d.overall.estimate()
	return p50, p95
}

// costEstimate returns the estimated service milliseconds for a request
// of the given class: the class ring's p50 once it has minCostSamples,
// the dataset's overall p50 before that, and 0 when nothing has ever
// completed (which disables cost-aware math exactly like the pre-model
// behaviour).
func (s *Server) costEstimate(name string, c costClass) float64 {
	s.latMu.Lock()
	d := s.lat[name]
	s.latMu.Unlock()
	if d == nil {
		return 0
	}
	d.mu.Lock()
	r := d.classes[c]
	d.mu.Unlock()
	if r != nil {
		if p50, _, n := r.estimate(); n >= minCostSamples {
			return p50
		}
	}
	p50, _, _ := d.overall.estimate()
	return p50
}

// costStats snapshots the dataset's cost-model table for /v1/stats,
// sorted by class name; nil when no class has a sample yet.
func (s *Server) costStats(name string) []CostClassStats {
	s.latMu.Lock()
	d := s.lat[name]
	s.latMu.Unlock()
	if d == nil {
		return nil
	}
	d.mu.Lock()
	classes := make(map[costClass]*latRing, len(d.classes))
	for c, r := range d.classes {
		classes[c] = r
	}
	d.mu.Unlock()
	out := make([]CostClassStats, 0, len(classes))
	for c, r := range classes {
		p50, _, n := r.estimate()
		if n == 0 {
			continue
		}
		out = append(out, CostClassStats{Class: c.String(), EstimateMs: p50, Samples: n})
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// dropLatency discards the named dataset's rings (detach): a later
// dataset of the same name starts a fresh distribution.
func (s *Server) dropLatency(name string) {
	s.latMu.Lock()
	delete(s.lat, name)
	s.latMu.Unlock()
}
