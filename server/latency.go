package server

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latWindow is the number of most-recent query latencies each dataset's
// ring retains for quantile estimation. 4096 eight-byte samples keep the
// per-dataset footprint at 32 KiB while making p99 meaningful (≈41
// samples above it at a full ring).
const latWindow = 4096

// latRing is a fixed-size ring of query latencies for one dataset.
// Recording is O(1) under a mutex; quantiles sort a snapshot on demand
// (stats is called by /v1/stats, not on the query path).
type latRing struct {
	mu      sync.Mutex
	samples [latWindow]float64 // milliseconds
	next    int
	filled  bool
	count   int64   // lifetime successful queries, not capped by the window
	max     float64 // lifetime maximum

	// Cached p50/p95 for the admission controller, which consults the
	// ring on every shed decision and must not pay a 4096-sample sort
	// each time. Recomputed at most once per estRecompute, and only when
	// new samples arrived since the last computation.
	estAt    time.Time
	estCount int64
	estP50   float64
	estP95   float64
}

// estRecompute bounds how often estimate() re-sorts the ring. 100ms is
// far below the timescale on which a latency distribution drifts, and
// caps the estimator's cost at ~10 sorts/s however hot the shed path is.
const estRecompute = 100 * time.Millisecond

func (r *latRing) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.samples[r.next] = ms
	r.next++
	if r.next == latWindow {
		r.next = 0
		r.filled = true
	}
	r.count++
	if ms > r.max {
		r.max = ms
	}
	r.mu.Unlock()
}

// LatencyStats reports a dataset's query-latency distribution: quantiles
// over the most recent latWindow successful /v1/query requests (measured
// from handler entry, so coalescing wait time is included), plus lifetime
// count and maximum.
type LatencyStats struct {
	// Count is the number of successful queries recorded since the dataset
	// was first served (not capped by the quantile window).
	Count int64 `json:"count"`
	// P50Ms, P95Ms and P99Ms are latency quantiles in milliseconds over
	// the most recent samples.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MaxMs is the lifetime maximum latency in milliseconds.
	MaxMs float64 `json:"max_ms"`
}

// stats computes the quantiles from a snapshot of the ring; nil when no
// sample was ever recorded.
func (r *latRing) stats() *LatencyStats {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = latWindow
	}
	if n == 0 {
		r.mu.Unlock()
		return nil
	}
	snap := make([]float64, n)
	copy(snap, r.samples[:n])
	out := &LatencyStats{Count: r.count, MaxMs: r.max}
	r.mu.Unlock()
	sort.Float64s(snap)
	out.P50Ms = quantile(snap, 0.50)
	out.P95Ms = quantile(snap, 0.95)
	out.P99Ms = quantile(snap, 0.99)
	return out
}

// estimate returns cached p50/p95 over the ring (milliseconds; zeros
// when no sample was recorded). Unlike stats it is cheap enough for the
// admission hot path: the sort reruns at most once per estRecompute.
func (r *latRing) estimate() (p50, p95 float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = latWindow
	}
	if n == 0 {
		return 0, 0
	}
	if r.count != r.estCount && time.Since(r.estAt) >= estRecompute {
		snap := make([]float64, n)
		copy(snap, r.samples[:n])
		sort.Float64s(snap)
		r.estP50 = quantile(snap, 0.50)
		r.estP95 = quantile(snap, 0.95)
		r.estAt = time.Now()
		r.estCount = r.count
	}
	return r.estP50, r.estP95
}

// quantile returns the nearest-rank q-quantile of ascending-sorted samples.
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// recordLatency folds one successful query's latency into the named
// dataset's ring, creating the ring on first use.
func (s *Server) recordLatency(name string, d time.Duration) {
	s.latMu.Lock()
	r := s.lat[name]
	if r == nil {
		r = new(latRing)
		s.lat[name] = r
	}
	s.latMu.Unlock()
	r.record(d)
}

// latencyStats returns the named dataset's latency quantiles, or nil when
// no query completed against it yet.
func (s *Server) latencyStats(name string) *LatencyStats {
	s.latMu.Lock()
	r := s.lat[name]
	s.latMu.Unlock()
	if r == nil {
		return nil
	}
	return r.stats()
}

// latencyEstimate returns the named dataset's cached p50/p95 latency in
// milliseconds (zeros before any query completes) — the input to the
// admission controller's service-time estimate and Retry-After.
func (s *Server) latencyEstimate(name string) (p50, p95 float64) {
	s.latMu.Lock()
	r := s.lat[name]
	s.latMu.Unlock()
	if r == nil {
		return 0, 0
	}
	return r.estimate()
}

// dropLatency discards the named dataset's ring (detach): a later dataset
// of the same name starts a fresh distribution.
func (s *Server) dropLatency(name string) {
	s.latMu.Lock()
	delete(s.lat, name)
	s.latMu.Unlock()
}
