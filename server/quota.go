package server

import (
	"fmt"
	"math"
	"net/http"
	"time"
)

// quotaMaxClients bounds the bucket map. When a new client would push the
// map past it, fully-idle buckets (back at burst capacity) are pruned
// first; the cap is only soft — with more simultaneously active clients
// than this the map grows past it rather than dropping rate state.
const quotaMaxClients = 1024

// WithQuota enforces a per-client token-bucket rate limit ahead of
// admission: each client may issue rps query/batch requests per second
// sustained, with bursts up to burst requests. Clients are identified by
// the X-Client-ID header (preferred) or the request's "client" field;
// requests carrying neither share one anonymous bucket, so an anonymous
// free-for-all is collectively — not individually — limited. A request
// over its bucket is shed with 429 + Retry-After (when the bucket
// refills enough for one request, rounded up to whole seconds) and
// counted as shed_quota in /v1/stats and expvar; it never reaches the
// admission queue, so one aggressive client cannot displace the others'
// queued work no matter what priority it claims.
//
// rps <= 0 (the default) disables quotas; burst < 1 is raised to 1.
func WithQuota(rps float64, burst int) Option {
	return func(s *Server) {
		if rps <= 0 {
			return
		}
		s.quotaRPS = rps
		if burst < 1 {
			burst = 1
		}
		s.quotaBurst = burst
	}
}

// QuotaEnabled reports whether the server was built with per-client
// quotas (WithQuota with a positive rate).
func (s *Server) QuotaEnabled() bool { return s.quotaRPS > 0 }

// tokenBucket is one client's quota state: a standard token bucket
// refilled lazily on access.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// quotaCheck charges one request to the client's bucket, returning the
// 429 shed when the bucket is empty (and nil when quotas are off or the
// request fits). The caller is identified before admission, so a shed
// request never occupies queue state.
func (s *Server) quotaCheck(client string) *shedError {
	if s.quotaRPS <= 0 {
		return nil
	}
	now := time.Now()
	s.quotaMu.Lock()
	b := s.quotaBuckets[client]
	if b == nil {
		if len(s.quotaBuckets) >= quotaMaxClients {
			s.pruneQuotaLocked(now)
		}
		b = &tokenBucket{tokens: float64(s.quotaBurst), last: now}
		s.quotaBuckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.quotaRPS
	if b.tokens > float64(s.quotaBurst) {
		b.tokens = float64(s.quotaBurst)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		s.quotaMu.Unlock()
		return nil
	}
	deficit := 1 - b.tokens
	s.quotaMu.Unlock()
	s.shedQuota.Add(1)
	retry := int(math.Ceil(deficit / s.quotaRPS))
	if retry < 1 {
		retry = 1
	}
	if retry > 60 {
		retry = 60
	}
	who := "anonymous clients"
	if client != "" {
		who = fmt.Sprintf("client %q", client)
	}
	return &shedError{
		status:     http.StatusTooManyRequests,
		retryAfter: retry,
		reason:     fmt.Sprintf("%s over rate quota", who),
	}
}

// pruneQuotaLocked drops buckets that have refilled to burst capacity —
// clients idle long enough to carry no rate state worth keeping. Caller
// holds quotaMu.
func (s *Server) pruneQuotaLocked(now time.Time) {
	for id, b := range s.quotaBuckets {
		idle := b.tokens + now.Sub(b.last).Seconds()*s.quotaRPS
		if idle >= float64(s.quotaBurst) {
			delete(s.quotaBuckets, id)
		}
	}
}

// clientID resolves the quota identity of a request: the X-Client-ID
// header wins over the body's "client" field; both empty means the
// shared anonymous bucket.
func clientID(r *http.Request, bodyClient string) string {
	if h := r.Header.Get("X-Client-ID"); h != "" {
		return h
	}
	return bodyClient
}
