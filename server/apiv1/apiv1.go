// Package apiv1 is the versioned wire contract of the /v1 HTTP API: the
// typed request envelopes (query, batch, mutate), the shared
// decode-and-validate path every /v1 endpoint runs through, and the error
// schema every non-2xx response carries. The server package aliases these
// types, so handlers and clients compile against one definition; the
// envelope owns everything that is true of a request independent of
// server configuration (field syntax, mutual-exclusion rules, priority
// and algorithm vocabulary), while per-deployment limits (batch caps,
// body size) stay with the server.
//
// Compatibility contract: every wire payload accepted by the pre-envelope
// decoders parses identically here — same fields, same
// unknown-field rejection, same tolerance for trailing bytes after the
// first JSON value (json.Decoder semantics). The golden-request test in
// the server package replays the committed fuzz corpora to hold this.
package apiv1

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro"
)

// Priority is a request's admission tier. Under overload the server
// schedules interactive ahead of normal ahead of bulk, sheds bulk first,
// and ages long-queued waiters upward so no tier starves (see
// server.WithAdmission). Empty means PriorityNormal.
type Priority string

const (
	// PriorityInteractive is for latency-sensitive point lookups — a
	// seller watching their product's rank. Admitted first, shed last.
	PriorityInteractive Priority = "interactive"
	// PriorityNormal is the default tier.
	PriorityNormal Priority = "normal"
	// PriorityBulk is for analytics sweeps and batch scans that tolerate
	// queueing: shed first under overload, protected from starvation only
	// by aging.
	PriorityBulk Priority = "bulk"
)

// ParsePriority maps a wire token to a Priority, case-insensitively;
// empty means PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "":
		return PriorityNormal, nil
	case string(PriorityInteractive):
		return PriorityInteractive, nil
	case string(PriorityNormal):
		return PriorityNormal, nil
	case string(PriorityBulk):
		return PriorityBulk, nil
	}
	return "", fmt.Errorf("unknown priority %q (interactive, normal or bulk)", s)
}

// Tier is the Priority's scheduling index: 0 (interactive) is served
// first, NumTiers-1 (bulk) is shed first. Unknown or empty values map to
// the normal tier; Validate is where unknown values are rejected.
func (p Priority) Tier() int {
	switch pp, err := ParsePriority(string(p)); {
	case err != nil:
		return TierNormal
	case pp == PriorityInteractive:
		return TierInteractive
	case pp == PriorityBulk:
		return TierBulk
	default:
		return TierNormal
	}
}

// Scheduling tiers, ordered best-first. These index the per-tier counters
// in the admission stats.
const (
	TierInteractive = 0
	TierNormal      = 1
	TierBulk        = 2
	NumTiers        = 3
)

// TierName returns the wire name of a scheduling tier ("interactive",
// "normal", "bulk").
func TierName(tier int) string {
	switch tier {
	case TierInteractive:
		return string(PriorityInteractive)
	case TierBulk:
		return string(PriorityBulk)
	default:
		return string(PriorityNormal)
	}
}

// Request is what the shared decode path accepts: an envelope that can
// vouch for its own internal consistency. Validate reports the first
// request-level error (mutually exclusive fields, unknown enum tokens,
// out-of-range values) — everything that is wrong with the payload
// itself, as opposed to wrong for a particular server's configuration.
type Request interface {
	Validate() error
}

// Decode parses one JSON request body into dst and validates it: the
// single decode path of every /v1 endpoint. Unknown fields are rejected
// (a misspelled option must not be silently ignored), while bytes after
// the first JSON value are tolerated, matching json.Decoder and the
// pre-envelope decoders bug-for-bug.
func Decode(r io.Reader, dst Request) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return dst.Validate()
}

// QueryRequest is the body of POST /v1/query. Exactly one of Focal (an
// index into the served dataset) or Point (a what-if record with the
// dataset's dimensionality) must be set.
type QueryRequest struct {
	// Dataset names the served dataset to query. Empty resolves to the
	// sole served dataset, or to the one named "default".
	Dataset string `json:"dataset,omitempty"`
	// Focal is the index of the focal record in the served dataset.
	Focal *int `json:"focal,omitempty"`
	// Point is a hypothetical focal record (the paper's what-if scenario).
	Point []float64 `json:"point,omitempty"`
	// Algorithm selects the strategy by name ("auto", "fca", "ba", "aa");
	// empty means auto.
	Algorithm string `json:"algorithm,omitempty"`
	// Tau enables iMaxRank: regions with rank up to k*+tau are reported.
	Tau int `json:"tau,omitempty"`
	// OutrankIDs materialises, per region, the IDs of the records that
	// outrank the focal record there.
	OutrankIDs bool `json:"outrank_ids,omitempty"`
	// MaxRegions truncates the reported regions (0 = all); TotalRegions in
	// the response always reports the untruncated count.
	MaxRegions int `json:"max_regions,omitempty"`
	// Priority is the request's admission tier (empty = normal); see
	// Priority.
	Priority Priority `json:"priority,omitempty"`
	// Client identifies the caller for per-client quotas (the X-Client-ID
	// header takes precedence when both are set); empty shares the
	// anonymous bucket.
	Client string `json:"client,omitempty"`
}

// Validate implements Request.
func (r *QueryRequest) Validate() error {
	if (r.Focal == nil) == (len(r.Point) == 0) {
		return fmt.Errorf("exactly one of focal or point must be set")
	}
	return validateShared(r.Algorithm, r.Tau, r.Priority)
}

// Options converts the request's query-shaping fields to the engine's
// struct form. Validate must have passed; Options re-checks the algorithm
// only because it needs the parsed value anyway.
func (r *QueryRequest) Options() (repro.QueryOptions, error) {
	return buildOptions(r.Algorithm, r.Tau, r.OutrankIDs)
}

// BatchRequest is the body of POST /v1/batch: the listed focal indexes are
// queried on the engine's worker pool under shared options.
type BatchRequest struct {
	// Dataset names the served dataset to query; see QueryRequest.Dataset.
	Dataset string `json:"dataset,omitempty"`
	// Focals lists the in-dataset focal record indexes to query.
	Focals []int `json:"focals"`
	// Algorithm, Tau, OutrankIDs and MaxRegions apply to every query; see
	// QueryRequest.
	Algorithm  string `json:"algorithm,omitempty"`
	Tau        int    `json:"tau,omitempty"`
	OutrankIDs bool   `json:"outrank_ids,omitempty"`
	MaxRegions int    `json:"max_regions,omitempty"`
	// Priority is the batch's admission tier (empty = normal). Batch scans
	// are the workload PriorityBulk exists for.
	Priority Priority `json:"priority,omitempty"`
	// Client identifies the caller for per-client quotas; see
	// QueryRequest.Client.
	Client string `json:"client,omitempty"`
}

// Validate implements Request. The per-server batch size cap is enforced
// by the handler, not here.
func (r *BatchRequest) Validate() error {
	if len(r.Focals) == 0 {
		return fmt.Errorf("focals must be non-empty")
	}
	return validateShared(r.Algorithm, r.Tau, r.Priority)
}

// Options converts the batch's query-shaping fields to the engine's
// struct form; see QueryRequest.Options.
func (r *BatchRequest) Options() (repro.QueryOptions, error) {
	return buildOptions(r.Algorithm, r.Tau, r.OutrankIDs)
}

// MutateOp is one point mutation of a POST /v1/datasets/{name}/mutate
// request. Exactly one of Insert and Delete must be set.
type MutateOp struct {
	// Insert is a record to add; it must have the dataset's dimensionality
	// and finite coordinates.
	Insert []float64 `json:"insert,omitempty"`
	// Delete is the index of a record to remove. All indexes in a batch
	// refer to the dataset version being mutated — an op never sees the
	// effect of an earlier op in the same batch.
	Delete *int `json:"delete,omitempty"`
}

// MutateRequest is the body of POST /v1/datasets/{name}/mutate. The batch
// is atomic: one invalid op rejects the whole request and the dataset
// version is unchanged.
type MutateRequest struct {
	Ops []MutateOp `json:"ops"`
}

// Validate implements Request. Dimensionality and index-range checks need
// the target dataset and happen in the engine; here the envelope enforces
// only shape: a non-empty batch of well-formed ops. The per-server op cap
// is the handler's.
func (r *MutateRequest) Validate() error {
	if len(r.Ops) == 0 {
		return fmt.Errorf("ops must be non-empty")
	}
	for i, op := range r.Ops {
		if (len(op.Insert) > 0) == (op.Delete != nil) {
			return fmt.Errorf("op %d: exactly one of insert and delete must be set", i)
		}
	}
	return nil
}

// EngineOps converts the validated batch to engine ops, reporting the
// insert/delete composition for the response.
func (r *MutateRequest) EngineOps() (ops []repro.Op, inserted, deleted int) {
	ops = make([]repro.Op, 0, len(r.Ops))
	for _, op := range r.Ops {
		if len(op.Insert) > 0 {
			ops = append(ops, repro.InsertOp(op.Insert))
			inserted++
		} else {
			ops = append(ops, repro.DeleteOp(*op.Delete))
			deleted++
		}
	}
	return ops, inserted, deleted
}

// AttachRequest is the body of POST /v1/datasets: load the index snapshot
// at Path (a file on the server's filesystem) and serve it as Name. The
// endpoint requires the server to have been built WithSnapshotLoader.
type AttachRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

// Validate implements Request. Dataset-name syntax is the registry's rule
// and stays with the server; the envelope only requires the fields to be
// present.
func (r *AttachRequest) Validate() error {
	if r.Path == "" {
		return fmt.Errorf("path must be set")
	}
	return nil
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// validateShared checks the fields query and batch share.
func validateShared(algorithm string, tau int, priority Priority) error {
	if algorithm != "" {
		if _, err := repro.ParseAlgorithm(algorithm); err != nil {
			return err
		}
	}
	if tau < 0 {
		return fmt.Errorf("tau must be >= 0, got %d", tau)
	}
	if _, err := ParsePriority(string(priority)); err != nil {
		return err
	}
	return nil
}

// buildOptions assembles the engine options shared by query and batch.
func buildOptions(algorithm string, tau int, outrankIDs bool) (repro.QueryOptions, error) {
	var o repro.QueryOptions
	if algorithm != "" {
		alg, err := repro.ParseAlgorithm(algorithm)
		if err != nil {
			return o, err
		}
		o.Algorithm = alg
	}
	if tau < 0 {
		return o, fmt.Errorf("tau must be >= 0, got %d", tau)
	}
	o.Tau = tau
	o.OutrankIDs = outrankIDs
	return o, nil
}
