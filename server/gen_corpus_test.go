package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzCorpus (re)generates the committed seed corpora under
// testdata/fuzz/{FuzzQueryRequest,FuzzMutateRequest} from the in-code
// seed lists in fuzz_test.go. Skipped unless GEN_FUZZ_CORPUS=1:
//
//	GEN_FUZZ_CORPUS=1 go test ./server -run TestGenerateFuzzCorpus
//
// Plain `go test` replays every committed entry on every run.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, seeds := range map[string][][]byte{
		"FuzzQueryRequest":  queryFuzzSeeds,
		"FuzzMutateRequest": mutateFuzzSeeds,
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus entries to %s", len(seeds), dir)
	}
}
