package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro"
)

// newEngine builds a small engine over a deterministic dataset.
func newEngine(t testing.TB, dist string, n, dim int, seed int64) *repro.Engine {
	t.Helper()
	ds, err := repro.GenerateDataset(dist, n, dim, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(ds, repro.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRegistryAddAcquireRemove(t *testing.T) {
	reg := NewRegistry()
	eng := newEngine(t, "IND", 100, 3, 1)
	if err := reg.Add("hotels", eng); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("hotels", eng); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate Add error = %v, want ErrDatasetExists", err)
	}
	for _, bad := range []string{"", "a/b", "a b", "a\\b", "a\nb", ".", "..", "a?b", "a#b", "a%b"} {
		if err := reg.Add(bad, eng); err == nil {
			t.Fatalf("Add(%q) succeeded, want error", bad)
		}
	}
	got, release, err := reg.Acquire("hotels")
	if err != nil || got != eng {
		t.Fatalf("Acquire = (%v, %v), want the registered engine", got, err)
	}
	release()
	release() // double release must be a no-op

	if _, _, err := reg.Acquire("missing"); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("Acquire(missing) error = %v, want ErrDatasetNotFound", err)
	}
	if err := reg.Remove(context.Background(), "hotels"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Acquire("hotels"); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("Acquire after Remove error = %v, want ErrDatasetNotFound", err)
	}
	if err := reg.Remove(context.Background(), "hotels"); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("second Remove error = %v, want ErrDatasetNotFound", err)
	}
}

// TestRegistryRemoveDrainsInflight: Remove must block until every
// outstanding Acquire is released, and new Acquires must fail as soon as
// Remove starts.
func TestRegistryRemoveDrainsInflight(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("ds", newEngine(t, "IND", 100, 3, 1)); err != nil {
		t.Fatal(err)
	}
	_, release, err := reg.Acquire("ds")
	if err != nil {
		t.Fatal(err)
	}
	removed := make(chan error, 1)
	go func() { removed <- reg.Remove(context.Background(), "ds") }()

	// The name stops resolving promptly even while the drain is pending.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, rel, err := reg.Acquire("ds"); err != nil {
			break
		} else {
			rel()
		}
		if time.Now().After(deadline) {
			t.Fatal("Acquire kept succeeding after Remove started")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-removed:
		t.Fatalf("Remove returned %v before the in-flight query released", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-removed:
		if err != nil {
			t.Fatalf("Remove after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Remove never returned after the last release")
	}
}

// TestRegistryRemoveTimeout: a drain that outlives its context detaches
// the dataset but reports the abandoned stragglers.
func TestRegistryRemoveTimeout(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("ds", newEngine(t, "IND", 100, 3, 1)); err != nil {
		t.Fatal(err)
	}
	_, release, err := reg.Acquire("ds")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := reg.Remove(ctx, "ds"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Remove error = %v, want DeadlineExceeded", err)
	}
	if reg.Len() != 0 {
		t.Fatal("dataset still registered after timed-out Remove")
	}
}

// TestRegistryResolveRules: empty names resolve to the sole dataset, then
// to "default", and fail otherwise.
func TestRegistryResolveRules(t *testing.T) {
	reg := NewRegistry()
	if _, _, _, err := reg.resolve(""); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("resolve on empty registry = %v, want ErrDatasetNotFound", err)
	}
	engA := newEngine(t, "IND", 80, 2, 1)
	if err := reg.Add("a", engA); err != nil {
		t.Fatal(err)
	}
	eng, name, release, err := reg.resolve("")
	if err != nil || eng != engA || name != "a" {
		t.Fatalf("resolve with one dataset = (%v, %q, %v)", eng, name, err)
	}
	release()
	if err := reg.Add("b", newEngine(t, "COR", 80, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := reg.resolve(""); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("ambiguous resolve = %v, want ErrDatasetNotFound", err)
	}
	engD := newEngine(t, "ANTI", 80, 2, 3)
	if err := reg.Add(DefaultDataset, engD); err != nil {
		t.Fatal(err)
	}
	eng, name, release, err = reg.resolve("")
	if err != nil || eng != engD || name != DefaultDataset {
		t.Fatalf("resolve with default = (%v, %q, %v)", eng, name, err)
	}
	release()
}

// multiServer serves two named datasets with distinct shapes so responses
// are attributable.
func multiServer(t testing.TB, opts ...Option) (*Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add("hotels", newEngine(t, "IND", 400, 3, 42)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("cars", newEngine(t, "ANTI", 300, 2, 7)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewMulti(reg, append([]Option{WithLogger(nil)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, reg
}

func TestMultiDatasetQueries(t *testing.T) {
	srv, _ := multiServer(t)
	focal := 7

	// Unqualified request is ambiguous with two datasets and no "default".
	code, body := post(t, srv, "/v1/query", QueryRequest{Focal: &focal})
	if code != http.StatusNotFound {
		t.Fatalf("unqualified query = %d (%s), want 404", code, body)
	}
	// Each dataset answers under its own name with its own shape.
	var byName = map[string]int{"hotels": 0, "cars": 0}
	for name := range byName {
		code, body := post(t, srv, "/v1/query", QueryRequest{Dataset: name, Focal: &focal, Tau: 1})
		if code != http.StatusOK {
			t.Fatalf("query %s = %d: %s", name, code, body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.KStar < 1 {
			t.Fatalf("%s: k* = %d", name, resp.KStar)
		}
		byName[name] = len(resp.Regions[0].QueryVector)
	}
	if byName["hotels"] != 3 || byName["cars"] != 2 {
		t.Fatalf("query vectors came from the wrong datasets: %v", byName)
	}
	// Unknown dataset: 404.
	code, body = post(t, srv, "/v1/query", QueryRequest{Dataset: "nope", Focal: &focal})
	if code != http.StatusNotFound {
		t.Fatalf("unknown dataset = %d (%s), want 404", code, body)
	}
	// Batch with a dataset name.
	code, body = post(t, srv, "/v1/batch", BatchRequest{Dataset: "cars", Focals: []int{1, 2, 3}})
	if code != http.StatusOK {
		t.Fatalf("batch cars = %d: %s", code, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
}

func TestDatasetListingAndStats(t *testing.T) {
	srv, _ := multiServer(t)
	code, body := get(t, srv, "/v1/datasets")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/datasets = %d", code)
	}
	var list DatasetsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 2 || list.Datasets[0].Name != "cars" || list.Datasets[1].Name != "hotels" {
		t.Fatalf("listing = %+v, want cars and hotels sorted", list.Datasets)
	}
	for _, d := range list.Datasets {
		if d.Fingerprint == "" || d.Records == 0 || d.Dim == 0 {
			t.Fatalf("incomplete dataset info: %+v", d)
		}
	}

	// Run one cached pair against hotels, then check per-dataset stats.
	focal := 3
	for i := 0; i < 2; i++ {
		if code, body := post(t, srv, "/v1/query", QueryRequest{Dataset: "hotels", Focal: &focal}); code != 200 {
			t.Fatalf("query = %d: %s", code, body)
		}
	}
	code, body = get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Datasets) != 2 {
		t.Fatalf("stats cover %d datasets, want 2", len(stats.Datasets))
	}
	h := stats.Datasets["hotels"].Engine
	if h.Queries != 2 || h.CacheHits != 1 || h.CacheMisses != 1 {
		t.Fatalf("hotels engine stats = %+v, want 2 queries, 1 hit, 1 miss", h)
	}
	if c := stats.Datasets["cars"].Engine; c.Queries != 0 {
		t.Fatalf("cars engine saw %d queries, want 0", c.Queries)
	}
}

// TestAttachAndDetachDataset drives the admin flow end to end: write a
// snapshot to disk, POST it under a new name, query it, DELETE it.
func TestAttachAndDetachDataset(t *testing.T) {
	ds, err := repro.GenerateDataset("COR", 250, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "flights.snap")
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	loader := func(path string) (*repro.Engine, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		loaded, err := repro.LoadSnapshot(f)
		if err != nil {
			return nil, err
		}
		return repro.NewEngine(loaded, repro.WithCache(32))
	}
	srv, _ := multiServer(t, WithSnapshotLoader(loader))

	code, body := post(t, srv, "/v1/datasets", AttachRequest{Name: "flights", Path: snapPath})
	if code != http.StatusCreated {
		t.Fatalf("attach = %d: %s", code, body)
	}
	var info DatasetInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "flights" || info.Records != 250 || info.Fingerprint != ds.Fingerprint() {
		t.Fatalf("attach info = %+v", info)
	}
	// Re-attach under the same name: 409.
	code, body = post(t, srv, "/v1/datasets", AttachRequest{Name: "flights", Path: snapPath})
	if code != http.StatusConflict {
		t.Fatalf("duplicate attach = %d (%s), want 409", code, body)
	}
	// Bad path: 422.
	code, _ = post(t, srv, "/v1/datasets", AttachRequest{Name: "x", Path: snapPath + ".missing"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("attach of missing file = %d, want 422", code)
	}
	// The attached dataset serves queries.
	focal := 5
	code, body = post(t, srv, "/v1/query", QueryRequest{Dataset: "flights", Focal: &focal})
	if code != http.StatusOK {
		t.Fatalf("query flights = %d: %s", code, body)
	}
	// Detach it; subsequent queries 404.
	req := httptest.NewRequest(http.MethodDelete, "/v1/datasets/flights", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("detach = %d: %s", rec.Code, rec.Body)
	}
	code, _ = post(t, srv, "/v1/query", QueryRequest{Dataset: "flights", Focal: &focal})
	if code != http.StatusNotFound {
		t.Fatalf("query after detach = %d, want 404", code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/datasets/flights", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second detach = %d, want 404", rec.Code)
	}
}

func TestAdminEndpointsWithoutLoaderAre501(t *testing.T) {
	srv, _ := multiServer(t)
	code, _ := post(t, srv, "/v1/datasets", AttachRequest{Name: "x", Path: "/nope"})
	if code != http.StatusNotImplemented {
		t.Fatalf("attach without loader = %d, want 501", code)
	}
	// Detach is gated identically: a server without the admin loader must
	// not let a client detach (and thereby brick) a served dataset.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/datasets/hotels", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("detach without loader = %d, want 501", rec.Code)
	}
	if _, release, err := srv.Registry().Acquire("hotels"); err != nil {
		t.Fatalf("dataset was detached despite 501: %v", err)
	} else {
		release()
	}
	// Mutate is gated identically: rewriting the served catalog is at
	// least as destructive as detaching it.
	code, _ = post(t, srv, "/v1/datasets/hotels/mutate", MutateRequest{Ops: []MutateOp{{Insert: []float64{0.5, 0.5, 0.5}}}})
	if code != http.StatusNotImplemented {
		t.Fatalf("mutate without loader = %d, want 501", code)
	}
	if v, err := srv.Registry().Version("hotels"); err != nil || v != 1 {
		t.Fatalf("dataset version %d (%v) despite 501, want 1", v, err)
	}
}

// TestConcurrentMultiDatasetServing hammers two datasets from many
// goroutines while a third is attached and detached, exercising the
// registry under the race detector.
func TestConcurrentMultiDatasetServing(t *testing.T) {
	srv, reg := multiServer(t)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "hotels"
			if w%2 == 1 {
				name = "cars"
			}
			for i := 0; i < 12; i++ {
				focal := (w*13 + i) % 100
				code, body := post(t, srv, "/v1/query", QueryRequest{Dataset: name, Focal: &focal})
				if code != http.StatusOK {
					t.Errorf("worker %d: query %s = %d: %s", w, name, code, body)
					return
				}
			}
		}(w)
	}
	// Concurrently churn a third dataset in and out of the registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("churn-%d", i)
			if err := reg.Add(name, newEngine(t, "IND", 50, 2, int64(i))); err != nil {
				t.Errorf("add %s: %v", name, err)
				return
			}
			if err := reg.Remove(context.Background(), name); err != nil {
				t.Errorf("remove %s: %v", name, err)
				return
			}
		}
	}()
	wg.Wait()

	// Both long-lived datasets saw traffic, with separate counters.
	_, body := get(t, srv, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if q := stats.Datasets["hotels"].Engine.Queries; q != 4*12 {
		t.Fatalf("hotels served %d queries, want %d", q, 4*12)
	}
	if q := stats.Datasets["cars"].Engine.Queries; q != 4*12 {
		t.Fatalf("cars served %d queries, want %d", q, 4*12)
	}
}
