package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro"
)

// DefaultDataset is the name a single-dataset deployment serves under when
// no explicit name is given, and the name unqualified requests resolve to
// when several datasets are registered.
const DefaultDataset = "default"

// ErrDatasetNotFound marks a lookup of a name the registry does not hold
// (or no longer holds — a removed dataset is gone as soon as Remove
// starts). Handlers map it to 404.
var ErrDatasetNotFound = errors.New("server: dataset not found")

// ErrDatasetExists marks an Add under a name already registered.
var ErrDatasetExists = errors.New("server: dataset already registered")

// Registry maps dataset names to engines and tracks the in-flight queries
// of each, so a dataset can be detached only after the queries it is
// serving have drained. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// regEntry pairs an engine with its in-flight accounting.
type regEntry struct {
	name string
	eng  *repro.Engine

	mu       sync.Mutex
	inflight int
	removed  bool
	drained  chan struct{} // closed when removed && inflight == 0
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// ValidDatasetName reports whether a name is acceptable: 1–128 bytes
// drawn from [A-Za-z0-9._-], and not "." or "..". The allowlist (rather
// than a denylist) is what lets names appear verbatim in URL paths and
// file names: anything with URL metacharacters ('?', '#', '%') or path
// dots would be attachable yet unaddressable in DELETE /v1/datasets/{name}.
func ValidDatasetName(name string) bool {
	if name == "" || len(name) > 128 || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Add registers an engine under a name. It fails with ErrDatasetExists if
// the name is taken.
func (r *Registry) Add(name string, eng *repro.Engine) error {
	if !ValidDatasetName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	if eng == nil {
		return fmt.Errorf("server: nil engine for dataset %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	r.entries[name] = &regEntry{name: name, eng: eng, drained: make(chan struct{})}
	return nil
}

// Acquire resolves a dataset name to its engine and pins it: the returned
// release function must be called when the query finishes, and a Remove of
// the dataset waits for every outstanding release. Acquire of a removed or
// unknown name fails with ErrDatasetNotFound.
func (r *Registry) Acquire(name string) (*repro.Engine, func(), error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.mu.Lock()
	if e.removed {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.inflight++
	e.mu.Unlock()
	var once sync.Once
	release := func() { once.Do(e.release) }
	return e.eng, release, nil
}

// release undoes one Acquire, closing the drain gate when a pending Remove
// was waiting for this query.
func (e *regEntry) release() {
	e.mu.Lock()
	e.inflight--
	if e.removed && e.inflight == 0 {
		close(e.drained)
	}
	e.mu.Unlock()
}

// Remove detaches a dataset: the name stops resolving immediately (new
// Acquires fail with ErrDatasetNotFound) and Remove then blocks until the
// queries already running against the engine have drained, or until ctx
// expires — in which case the dataset is still detached, but the error
// reports that stragglers were abandoned rather than awaited.
func (r *Registry) Remove(ctx context.Context, name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.mu.Lock()
	e.removed = true
	idle := e.inflight == 0
	if idle {
		close(e.drained)
	}
	e.mu.Unlock()
	if idle {
		return nil
	}
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: dataset %q detached but still draining: %w", name, ctx.Err())
	}
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// resolve maps a request's dataset name to an entry: an explicit name must
// exist; an empty name resolves to the only dataset when exactly one is
// registered, or to DefaultDataset when that name exists.
func (r *Registry) resolve(name string) (*repro.Engine, string, func(), error) {
	if name != "" {
		eng, release, err := r.Acquire(name)
		return eng, name, release, err
	}
	r.mu.RLock()
	switch len(r.entries) {
	case 0:
		r.mu.RUnlock()
		return nil, "", nil, fmt.Errorf("%w: no datasets registered", ErrDatasetNotFound)
	case 1:
		for only := range r.entries {
			name = only
		}
	default:
		if _, ok := r.entries[DefaultDataset]; ok {
			name = DefaultDataset
		} else {
			r.mu.RUnlock()
			return nil, "", nil, fmt.Errorf("%w: %d datasets served, request must name one", ErrDatasetNotFound, len(r.entries))
		}
	}
	r.mu.RUnlock()
	eng, release, err := r.Acquire(name)
	return eng, name, release, err
}

// forEach snapshots the current entries (sorted by name) and applies fn to
// each without holding the registry lock.
func (r *Registry) forEach(fn func(name string, eng *repro.Engine)) {
	r.mu.RLock()
	entries := make([]*regEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		fn(e.name, e.eng)
	}
}
