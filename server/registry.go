package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro"
)

// DefaultDataset is the name a single-dataset deployment serves under when
// no explicit name is given, and the name unqualified requests resolve to
// when several datasets are registered.
const DefaultDataset = "default"

// ErrDatasetNotFound marks a lookup of a name the registry does not hold
// (or no longer holds — a removed dataset is gone as soon as Remove
// starts). Handlers map it to 404.
var ErrDatasetNotFound = errors.New("server: dataset not found")

// ErrDatasetExists marks an Add under a name already registered.
var ErrDatasetExists = errors.New("server: dataset already registered")

// Registry maps dataset names to engines and tracks the in-flight queries
// of each, so a dataset can be detached only after the queries it is
// serving have drained. Each name serves a *versioned* engine: Mutate
// atomically swaps in a successor engine (a new dataset version) while
// queries pinned to the previous version by Acquire drain against it
// naturally. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// regEntry pairs a name's current engine version with its in-flight
// accounting. The inflight count spans versions: a query pinned to an old
// engine still counts, so Remove waits for every query the name is
// serving, not just those on the latest version.
type regEntry struct {
	name string

	// mutating serialises Mutate calls on this name; held across the
	// (slow) successor build so concurrent mutations cannot both derive
	// from the same parent version and silently lose one batch.
	mutating sync.Mutex

	mu       sync.Mutex
	eng      *repro.Engine // current version; swapped by Mutate
	version  uint64        // starts at 1, +1 per successful Mutate
	inflight int
	removed  bool
	drained  chan struct{} // closed when removed && inflight == 0

	// prior accumulates the counters of retired engine versions at each
	// swap, so the per-dataset stats the serving layer reports stay
	// cumulative (monotonic) across mutations instead of resetting to the
	// fresh engine's zeros. Queries still in flight on a retired version
	// at swap time may go uncounted — a small undercount, never a reset.
	prior repro.EngineStats
}

// engine returns the entry's current engine (the mu-guarded pointer).
func (e *regEntry) engine() (*repro.Engine, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.eng, e.version
}

// snapshot returns the entry's current engine and version together with
// the cumulative counters (current engine plus every retired version),
// all captured under one lock hold so a concurrent Mutate can never pair
// one version's identity with another version's stats. Cache
// size/capacity/enabled reflect the current engine only — the retired
// caches are gone.
func (e *regEntry) snapshot() (*repro.Engine, uint64, repro.EngineStats) {
	e.mu.Lock()
	eng, v, prior := e.eng, e.version, e.prior
	e.mu.Unlock()
	s := eng.Stats()
	s.Queries += prior.Queries
	s.CacheHits += prior.CacheHits
	s.CacheMisses += prior.CacheMisses
	s.CacheEvictions += prior.CacheEvictions
	return eng, v, s
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// ValidDatasetName reports whether a name is acceptable: 1–128 bytes
// drawn from [A-Za-z0-9._-], and not "." or "..". The allowlist (rather
// than a denylist) is what lets names appear verbatim in URL paths and
// file names: anything with URL metacharacters ('?', '#', '%') or path
// dots would be attachable yet unaddressable in DELETE /v1/datasets/{name}.
func ValidDatasetName(name string) bool {
	if name == "" || len(name) > 128 || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Add registers an engine under a name. It fails with ErrDatasetExists if
// the name is taken.
func (r *Registry) Add(name string, eng *repro.Engine) error {
	if !ValidDatasetName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	if eng == nil {
		return fmt.Errorf("server: nil engine for dataset %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	r.entries[name] = &regEntry{name: name, eng: eng, version: 1, drained: make(chan struct{})}
	return nil
}

// Acquire resolves a dataset name to its current engine version and pins
// it: the returned release function must be called when the query
// finishes, and a Remove of the dataset waits for every outstanding
// release. The returned engine is the caller's pinned version — a
// concurrent Mutate swaps the name to a successor without disturbing it,
// so a query always runs against one consistent dataset. Acquire of a
// removed or unknown name fails with ErrDatasetNotFound.
func (r *Registry) Acquire(name string) (*repro.Engine, func(), error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.mu.Lock()
	if e.removed {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.inflight++
	eng := e.eng
	e.mu.Unlock()
	var once sync.Once
	release := func() { once.Do(e.release) }
	return eng, release, nil
}

// release undoes one Acquire, closing the drain gate when a pending Remove
// was waiting for this query.
func (e *regEntry) release() {
	e.mu.Lock()
	e.inflight--
	if e.removed && e.inflight == 0 {
		close(e.drained)
	}
	e.mu.Unlock()
}

// Remove detaches a dataset: the name stops resolving immediately (new
// Acquires fail with ErrDatasetNotFound) and Remove then blocks until the
// queries already running against the engine have drained, or until ctx
// expires — in which case the dataset is still detached, but the error
// reports that stragglers were abandoned rather than awaited.
func (r *Registry) Remove(ctx context.Context, name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.mu.Lock()
	e.removed = true
	idle := e.inflight == 0
	if idle {
		close(e.drained)
	}
	e.mu.Unlock()
	if idle {
		return nil
	}
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: dataset %q detached but still draining: %w", name, ctx.Err())
	}
}

// Version returns the dataset's current version counter (1 after Add,
// +1 per successful Mutate).
func (r *Registry) Version(name string) (uint64, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	_, v := e.engine()
	return v, nil
}

// Mutate replaces a dataset's engine with the successor produced by fn
// (typically repro.Engine.Apply) and returns the new engine and version.
// fn receives the current engine together with its version counter,
// captured atomically — a write-ahead logger needs the pair to record
// which state a batch applied to. The swap is atomic: requests that
// Acquire after Mutate returns — and any that race with the swap itself —
// see either the old version or the new one, never a mix, and queries
// already pinned to the old version drain against it untouched. Mutations
// of one name are serialised (two concurrent Mutates cannot both derive
// from the same parent and lose an update); fn runs without blocking
// queries or other datasets.
//
// When fn fails its error is returned verbatim and the dataset is
// unchanged. A Remove racing with Mutate wins: the successor is discarded
// and Mutate reports ErrDatasetNotFound.
func (r *Registry) Mutate(ctx context.Context, name string, fn func(cur *repro.Engine, version uint64) (*repro.Engine, error)) (*repro.Engine, uint64, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	e.mutating.Lock()
	defer e.mutating.Unlock()
	e.mu.Lock()
	if e.removed {
		e.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	cur, curVersion := e.eng, e.version
	e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	next, err := fn(cur, curVersion)
	if err != nil {
		return nil, 0, err
	}
	if next == nil {
		return nil, 0, fmt.Errorf("server: mutation of %q produced a nil engine", name)
	}
	// Fold the outgoing version's counters into the entry's running total
	// before the swap, so reported stats stay monotonic across versions.
	ps := cur.Stats()
	e.mu.Lock()
	if e.removed {
		e.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q (removed during mutation)", ErrDatasetNotFound, name)
	}
	e.prior.Queries += ps.Queries
	e.prior.CacheHits += ps.CacheHits
	e.prior.CacheMisses += ps.CacheMisses
	e.prior.CacheEvictions += ps.CacheEvictions
	e.eng = next
	e.version++
	v := e.version
	e.mu.Unlock()
	return next, v, nil
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// resolve maps a request's dataset name to an entry: an explicit name must
// exist; an empty name resolves to the only dataset when exactly one is
// registered, or to DefaultDataset when that name exists.
func (r *Registry) resolve(name string) (*repro.Engine, string, func(), error) {
	if name != "" {
		eng, release, err := r.Acquire(name)
		return eng, name, release, err
	}
	r.mu.RLock()
	switch len(r.entries) {
	case 0:
		r.mu.RUnlock()
		return nil, "", nil, fmt.Errorf("%w: no datasets registered", ErrDatasetNotFound)
	case 1:
		for only := range r.entries {
			name = only
		}
	default:
		if _, ok := r.entries[DefaultDataset]; ok {
			name = DefaultDataset
		} else {
			r.mu.RUnlock()
			return nil, "", nil, fmt.Errorf("%w: %d datasets served, request must name one", ErrDatasetNotFound, len(r.entries))
		}
	}
	r.mu.RUnlock()
	eng, release, err := r.Acquire(name)
	return eng, name, release, err
}

// forEach snapshots the current entries (sorted by name) and applies fn to
// each entry's current engine version without holding the registry lock.
// stats carries the entry's cumulative counters (current version plus
// every retired one).
func (r *Registry) forEach(fn func(name string, eng *repro.Engine, version uint64, stats repro.EngineStats)) {
	r.mu.RLock()
	entries := make([]*regEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		eng, v, stats := e.snapshot()
		fn(e.name, eng, v, stats)
	}
}
