package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/snapshot"
)

// TestStatsStorageBlock: every dataset entry in /v1/stats carries a
// storage block that tells the truth about how the dataset is held —
// mmap with the file's size for a mapped v2 snapshot, heap with a
// non-zero footprint for an in-process build — and the expvar map sums
// the same numbers.
func TestStatsStorageBlock(t *testing.T) {
	built, err := repro.GenerateDataset("IND", 300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.snap")
	if err := built.WriteSnapshotFileVersion(path, snapshot.Version2, false); err != nil {
		t.Fatal(err)
	}
	mapped, err := repro.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	reg := NewRegistry()
	heapEng, err := repro.NewEngine(built)
	if err != nil {
		t.Fatal(err)
	}
	mmapEng, err := repro.NewEngine(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("heapds", heapEng); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("mmapds", mmapEng); err != nil {
		t.Fatal(err)
	}
	srv, err := NewMulti(reg, WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d: %s", code, body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}

	hs := resp.Datasets["heapds"].Storage
	if hs.Mode != repro.StorageHeap || hs.MappedBytes != 0 || hs.HeapBytes <= 0 {
		t.Fatalf("heap dataset storage block %+v", hs)
	}
	ms := resp.Datasets["mmapds"].Storage
	if ms.Mode != repro.StorageMmap {
		t.Fatalf("mmap dataset reports mode %q", ms.Mode)
	}
	if ms.MappedBytes <= 0 {
		t.Fatalf("mmap dataset reports mapped_bytes %d", ms.MappedBytes)
	}
	if ms.SnapshotVersion != snapshot.Version2 {
		t.Fatalf("mmap dataset reports snapshot_version %d", ms.SnapshotVersion)
	}
	if ms.HeapBytes != 0 {
		t.Fatalf("fully aliased mmap dataset reports heap_bytes %d", ms.HeapBytes)
	}

	// expvar follows the most recently constructed server and sums across
	// its datasets.
	mv := expvar.Get("maxrank")
	if mv == nil {
		t.Fatal("maxrank expvar map not published")
	}
	var ev struct {
		MappedBytes  int64 `json:"mapped_bytes"`
		HeapBytes    int64 `json:"heap_bytes"`
		DatasetsMmap int64 `json:"datasets_mmap"`
	}
	if err := json.Unmarshal([]byte(mv.String()), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.MappedBytes != ms.MappedBytes {
		t.Fatalf("expvar mapped_bytes %d, stats block %d", ev.MappedBytes, ms.MappedBytes)
	}
	if ev.HeapBytes != hs.HeapBytes+ms.HeapBytes {
		t.Fatalf("expvar heap_bytes %d, stats blocks sum %d", ev.HeapBytes, hs.HeapBytes+ms.HeapBytes)
	}
	if ev.DatasetsMmap != 1 {
		t.Fatalf("expvar datasets_mmap %d, want 1", ev.DatasetsMmap)
	}
}
