package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// newAdmissionServer builds a server whose queries are slowed by a
// simulated page latency (so overload is reachable with a handful of
// concurrent requests) and bounded by WithAdmission.
func newAdmissionServer(t testing.TB, pageLatency time.Duration, opts ...Option) *Server {
	t.Helper()
	ds, err := repro.GenerateDataset("IND", 400, 3, 42, repro.WithPageLatency(pageLatency))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, append([]Option{WithLogger(nil)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// checkRetryAfter asserts a shed response advertises a parseable,
// positive, whole-seconds Retry-After.
func checkRetryAfter(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Errorf("status %d carries Retry-After %q, want integer seconds in [1, 60] (err=%v)",
			rec.Code, ra, err)
	}
}

// TestAdmissionOverloadProperty is the overload property test: offered
// load at 4x the gate's total capacity (slots + queue), everything fired
// concurrently against a paged-latency engine. Invariants, checked after
// the storm drains:
//
//   - concurrently executing admission units never exceed max-inflight
//     (the gate's high-water mark);
//   - every response is 200, 429 or 503 — no admitted request is
//     abandoned, every shed is a proper early rejection;
//   - every 429/503 carries a parseable Retry-After;
//   - admitted + shed_queue_full + shed_deadline equals the offered
//     load (no request is double-counted or lost), at the gate, the
//     server totals and the /v1/stats wiring alike.
//
// Run under -race this is also the admission-path data-race test.
func TestAdmissionOverloadProperty(t *testing.T) {
	const (
		limit = 4
		depth = 8
		n     = 4 * (limit + depth) // 4x total capacity
	)
	// The request timeout is generous: deadline timers never fire, so
	// sheds are pure queue-full 429s and the accounting below is exact.
	srv := newAdmissionServer(t, 200*time.Microsecond,
		WithAdmission(limit, depth), WithRequestTimeout(30*time.Second))

	var (
		wg       sync.WaitGroup
		ok200    atomic.Int64
		shed429  atomic.Int64
		shed503  atomic.Int64
		other    atomic.Int64
		headerMu sync.Mutex
		badShed  []string
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			focal := i % 100
			body, _ := json.Marshal(QueryRequest{Focal: &focal, Tau: 1})
			req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(body)))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			<-start
			srv.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				ok200.Add(1)
				var resp QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.KStar < 1 {
					t.Errorf("admitted request %d returned unusable body: %v %s", i, err, rec.Body.Bytes())
				}
			case http.StatusTooManyRequests:
				shed429.Add(1)
			case http.StatusServiceUnavailable:
				shed503.Add(1)
			default:
				other.Add(1)
				t.Errorf("request %d: status %d, want 200/429/503: %s", i, rec.Code, rec.Body.Bytes())
			}
			if rec.Code == http.StatusTooManyRequests || rec.Code == http.StatusServiceUnavailable {
				if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 || secs > 60 {
					headerMu.Lock()
					badShed = append(badShed, rec.Header().Get("Retry-After"))
					headerMu.Unlock()
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if len(badShed) > 0 {
		t.Errorf("shed responses with unparseable Retry-After: %q", badShed)
	}
	if got := ok200.Load() + shed429.Load() + shed503.Load(); got != n {
		t.Errorf("responses: %d ok + %d 429 + %d 503 = %d, want %d (plus %d unexpected statuses)",
			ok200.Load(), shed429.Load(), shed503.Load(), got, n, other.Load())
	}
	if shed429.Load() == 0 {
		t.Errorf("4x overload produced no queue-full sheds (ok=%d): gate not binding", ok200.Load())
	}

	g := srv.gate(DefaultDataset)
	g.mu.Lock()
	hwm, inflight, queued := g.hwm, g.inflight, g.queued
	g.mu.Unlock()
	if hwm > limit {
		t.Errorf("in-flight high-water mark %d exceeds max-inflight %d", hwm, limit)
	}
	if inflight != 0 || queued != 0 {
		t.Errorf("after drain: inflight=%d queued=%d, want 0/0", inflight, queued)
	}
	if got := g.admitted.Load(); got != ok200.Load() {
		t.Errorf("gate admitted %d, but %d requests got 200", got, ok200.Load())
	}
	if sum := g.admitted.Load() + g.shedQueueFull.Load() + g.shedDeadline.Load(); sum != n {
		t.Errorf("gate counters sum to %d (admitted=%d queue_full=%d deadline=%d), want offered load %d",
			sum, g.admitted.Load(), g.shedQueueFull.Load(), g.shedDeadline.Load(), n)
	}

	// The same invariants through the public stats wiring.
	code, body := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d: %s", code, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	adm := stats.Datasets[DefaultDataset].Admission
	if adm == nil {
		t.Fatal("stats carry no admission block for the gated dataset")
	}
	if adm.MaxInflight != limit || adm.QueueDepth != depth {
		t.Errorf("stats echo bounds %d/%d, want %d/%d", adm.MaxInflight, adm.QueueDepth, limit, depth)
	}
	if adm.Admitted+adm.ShedQueueFull+adm.ShedDeadline != n {
		t.Errorf("stats counters sum to %d, want %d", adm.Admitted+adm.ShedQueueFull+adm.ShedDeadline, n)
	}
	if stats.Server.Admitted != adm.Admitted ||
		stats.Server.ShedQueueFull != adm.ShedQueueFull ||
		stats.Server.ShedDeadline != adm.ShedDeadline {
		t.Errorf("server totals %d/%d/%d diverge from the sole gate's %d/%d/%d",
			stats.Server.Admitted, stats.Server.ShedQueueFull, stats.Server.ShedDeadline,
			adm.Admitted, adm.ShedQueueFull, adm.ShedDeadline)
	}
}

// TestAdmissionDeadlineShed pins the 503 path deterministically: the only
// execution slot is held by the test itself, so a queued request MUST
// deadline-shed once its budget is spent, and requests beyond the queue
// depth MUST be rejected 429 immediately.
func TestAdmissionDeadlineShed(t *testing.T) {
	// The 2s request timeout is generous because -race on a loaded CI box
	// makes even the priming queries slow; the shed logic being tested is
	// timeout-scale invariant.
	srv := newAdmissionServer(t, 20*time.Microsecond,
		WithAdmission(1, 2), WithRequestTimeout(2*time.Second))

	// Prime the latency ring so the deadline shedder has a p50 to plan
	// with (and Retry-After a drain estimate).
	for i := 0; i < 3; i++ {
		focal := i
		if code, body := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 1}); code != http.StatusOK {
			t.Fatalf("priming query = %d: %s", code, body)
		}
	}

	// Occupy the only slot, bypassing HTTP so it is held for exactly as
	// long as this test wants.
	release, err := srv.admit(context.Background(), DefaultDataset, ticketFor(tierNormal, costClass{}))
	if err != nil {
		t.Fatalf("occupier admit: %v", err)
	}

	// A queued request cannot get the slot; its shed timer fires within
	// the 300ms request timeout and it reports 503 + Retry-After.
	focal := 50
	startShed := time.Now()
	body, _ := json.Marshal(QueryRequest{Focal: &focal, Tau: 1})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request with held slot = %d, want 503: %s", rec.Code, rec.Body.Bytes())
	}
	checkRetryAfter(t, rec)
	if waited := time.Since(startShed); waited > 5*time.Second {
		t.Errorf("deadline shed took %v, want within the 2s request deadline plus margin", waited)
	}
	if g := srv.gate(DefaultDataset); g.shedDeadline.Load() == 0 {
		t.Error("503 response did not count as a deadline shed")
	}

	// Fill the queue (depth 2) with two parked waiters, then a third
	// request must bounce 429 without waiting.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := 60 + i
			b, _ := json.Marshal(QueryRequest{Focal: &f, Tau: 1})
			r := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(b)))
			r.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, r)
			if w.Code != http.StatusServiceUnavailable {
				t.Errorf("parked waiter %d = %d, want eventual 503", i, w.Code)
			}
		}(i)
	}
	g := srv.gate(DefaultDataset)
	waitUntil(t, time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.queued == 2
	})
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request past a full queue = %d, want 429: %s", rec.Code, rec.Body.Bytes())
	}
	checkRetryAfter(t, rec)
	wg.Wait()

	// Releasing the occupier restores service.
	release()
	if code, b := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 1}); code != http.StatusOK {
		t.Fatalf("query after release = %d: %s", code, b)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionBatchGated asserts /v1/batch rides the same gate as
// /v1/query: with the only slot held, a batch bounces (503 via its
// deadline, or 429 once the queue is full) instead of executing.
func TestAdmissionBatchGated(t *testing.T) {
	// Generous timeout: with queue depth 0 the rejection path never
	// waits, and the deadline only bounds the post-release success path
	// (slow under -race).
	srv := newAdmissionServer(t, 20*time.Microsecond,
		WithAdmission(1, 0), WithRequestTimeout(20*time.Second))
	release, err := srv.admit(context.Background(), DefaultDataset, ticketFor(tierNormal, costClass{}))
	if err != nil {
		t.Fatalf("occupier admit: %v", err)
	}
	code, body := post(t, srv, "/v1/batch", BatchRequest{Focals: []int{1, 2}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch with zero queue depth and held slot = %d, want 429: %s", code, body)
	}
	release()
	if code, body = post(t, srv, "/v1/batch", BatchRequest{Focals: []int{1, 2}}); code != http.StatusOK {
		t.Fatalf("batch after release = %d: %s", code, body)
	}
}

// TestAdmissionStatsAcrossLifecycle extends the PR 5 monotonic-counter
// contract to the shedding counters: concurrent /v1/stats scrapes during
// dataset detach and mutation version swaps must never observe the
// server-level admitted/shed totals move backwards (and must not trip
// -race on the gate or latency ring teardown).
func TestAdmissionStatsAcrossLifecycle(t *testing.T) {
	srv := newAdmissionServer(t, 100*time.Microsecond,
		WithAdmission(2, 4), WithRequestTimeout(5*time.Second),
		// The detach endpoint is gated on the admin loader; the loader
		// itself is never invoked (re-attach goes through the registry).
		WithSnapshotLoader(func(path string) (*repro.Engine, error) {
			return nil, fmt.Errorf("unused")
		}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// On any failure path: stop the workers, then wait for them, so no
	// goroutine outlives the test.
	defer wg.Wait()
	defer close(stop)

	// Query workers: enough concurrency that the gate admits and sheds
	// while the lifecycle churns underneath.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				focal := (w*37 + i) % 100
				b, _ := json.Marshal(QueryRequest{Focal: &focal, Tau: 1})
				r := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(string(b)))
				r.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, r)
				// 200, shed, 404 during the detach window, or 504 (an
				// admitted query running past its deadline under -race
				// slowdown) are all legitimate; anything else is a bug.
				switch rec.Code {
				case http.StatusOK, http.StatusTooManyRequests,
					http.StatusServiceUnavailable, http.StatusNotFound,
					http.StatusGatewayTimeout:
				default:
					t.Errorf("query during lifecycle churn: status %d: %s", rec.Code, rec.Body.Bytes())
					return
				}
			}
		}(w)
	}

	// Stats scraper: the server-level admission totals are cumulative and
	// must survive both detach (gate dropped) and mutate (version swap).
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastAdmitted, lastShed int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body := get(t, srv, "/v1/stats")
			if code != http.StatusOK {
				t.Errorf("stats scrape: %d: %s", code, body)
				return
			}
			var stats StatsResponse
			if err := json.Unmarshal(body, &stats); err != nil {
				t.Errorf("stats scrape: %v", err)
				return
			}
			shed := stats.Server.ShedQueueFull + stats.Server.ShedDeadline
			if stats.Server.Admitted < lastAdmitted || shed < lastShed {
				t.Errorf("server admission totals moved backwards: admitted %d -> %d, shed %d -> %d",
					lastAdmitted, stats.Server.Admitted, lastShed, shed)
				return
			}
			lastAdmitted, lastShed = stats.Server.Admitted, shed
		}
	}()

	// Lifecycle churn: alternate mutation swaps with detach/re-attach of
	// the default dataset.
	ds, err := repro.GenerateDataset("IND", 400, 3, 42, repro.WithPageLatency(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		del := 200 + round
		code, body := post(t, srv, "/v1/datasets/default/mutate", MutateRequest{Ops: []MutateOp{
			{Delete: &del},
			{Insert: []float64{0.5, 0.4, 0.3}},
		}})
		if code != http.StatusOK {
			t.Fatalf("mutate round %d: %d: %s", round, code, body)
		}
		if round%2 == 1 {
			req := httptest.NewRequest(http.MethodDelete, "/v1/datasets/default", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			// 504 means the name is detached from routing but stragglers
			// outlived the drain window (Registry.Remove removes the entry
			// up front) — under -race slowdown that is expected; re-attach
			// is valid either way.
			if rec.Code != http.StatusOK && rec.Code != http.StatusGatewayTimeout {
				t.Fatalf("detach round %d: %d: %s", round, rec.Code, rec.Body.Bytes())
			}
			eng, err := repro.NewEngine(ds)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Registry().Add(DefaultDataset, eng); err != nil {
				t.Fatalf("re-attach round %d: %v", round, err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// After churn the cumulative totals must reflect real traffic. (The
	// deferred close(stop)/wg.Wait pair retires the workers; the final
	// scrape below tolerates their tail-end traffic because the totals
	// only grow.)
	code, body := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("final stats: %d: %s", code, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Admitted == 0 {
		t.Error("no admissions recorded across the lifecycle churn")
	}
}

// TestAdmissionDisabledIsTransparent pins the default: without
// WithAdmission, admit is free, stats carry no admission block, and the
// server totals stay zero.
func TestAdmissionDisabledIsTransparent(t *testing.T) {
	srv := newTestServer(t)
	if srv.AdmissionEnabled() {
		t.Fatal("admission reported enabled without WithAdmission")
	}
	release, err := srv.admit(context.Background(), DefaultDataset, ticketFor(tierNormal, costClass{}))
	if err != nil {
		t.Fatalf("admit with admission off: %v", err)
	}
	release()
	focal := 5
	if code, body := post(t, srv, "/v1/query", QueryRequest{Focal: &focal, Tau: 1}); code != http.StatusOK {
		t.Fatalf("query = %d: %s", code, body)
	}
	code, body := get(t, srv, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Datasets[DefaultDataset].Admission != nil {
		t.Error("stats carry an admission block with admission disabled")
	}
	if stats.Server.Admitted != 0 || stats.Server.ShedQueueFull != 0 || stats.Server.ShedDeadline != 0 {
		t.Error("admission counters nonzero with admission disabled")
	}
}
