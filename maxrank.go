// Package repro is a production-quality Go implementation of the Maximum
// Rank Query (MaxRank) of Mouratidis, Zhang and Pang, "Maximum Rank Query",
// PVLDB 8(12):1554–1565, VLDB 2015.
//
// Given a dataset of d-dimensional records and a focal record p, MaxRank
// computes k*, the best (smallest) rank p can achieve under any linear
// scoring function with positive weights, together with every region of the
// preference space where that rank is attained. The incremental variant
// iMaxRank(τ) reports the regions where p ranks within k*+τ.
//
// The package bundles everything the paper's system depends on, implemented
// from scratch on the standard library alone: an aggregate R*-tree over a
// simulated page store, the BBS skyline algorithm with the paper's implicit
// half-space subsumption, an augmented quad-tree over the reduced query
// space, a within-leaf arrangement-cell enumerator, and a dense simplex LP
// solver that fills the role Qhull plays in the authors' implementation.
//
// Quick start:
//
//	ds, _ := repro.NewDataset(points)            // [][]float64, one record per row
//	res, _ := repro.Compute(ds, 17)              // MaxRank of record 17
//	fmt.Println(res.KStar, len(res.Regions))     // best rank and its regions
//	q := res.Regions[0].QueryVector              // a preference achieving it
package repro

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mmap"
	"repro/internal/pager"
	"repro/internal/rstar"
	"repro/internal/snapshot"
	"repro/internal/vecmath"
)

// Dataset is an indexed collection of records. It is built once and then
// queried any number of times; page-access statistics accumulate in the
// backing store and can be reset between queries.
type Dataset struct {
	points []vecmath.Point
	tree   *rstar.Tree
	// src is the page source serving the index: a heap *pager.Store for
	// built or stream-loaded datasets, a read-only pager.Mapped view for
	// datasets served straight from a memory-mapped v2 snapshot.
	src pager.Source

	// quadMaxPartial and quadMaxDepth are the dataset's default quad-tree
	// partitioning parameters (0 = library default). Per-query WithQuadTree
	// options override them; they persist in snapshots so a served dataset
	// keeps the partitioning it was built for.
	quadMaxPartial int
	quadMaxDepth   int

	// directMemory and pageLatency record the serving scenario the dataset
	// was configured for, so a mutation (Dataset.Apply) can reproduce it on
	// the successor dataset.
	directMemory bool
	pageLatency  time.Duration

	// snapVersion and snapF32 record the snapshot format the dataset was
	// loaded from (0 = built in process), so write-back — WriteSnapshotFile,
	// maxrankd -resnapshot — preserves the operator's format choice.
	// Mutation successors inherit snapVersion but drop the float32 flag:
	// re-quantizing freshly inserted full-precision points on every
	// re-snapshot would silently drift the serving fingerprint.
	snapVersion int
	snapF32     bool

	// mapping owns the mmap backing when the dataset serves zero-copy from
	// a v2 snapshot (nil otherwise); points and pages alias it, so it must
	// outlive the dataset. pointsAliased records whether points alias the
	// mapping (false for float32 snapshots, whose points materialize).
	mapping       *mmap.Mapping
	pointsAliased bool

	fpOnce sync.Once
	fp     string
}

// DatasetOption configures dataset construction.
type DatasetOption func(*datasetConfig)

type datasetConfig struct {
	pageSize       int
	directMemory   bool
	insertBuild    bool
	noMmap         bool
	pageLatency    time.Duration
	quadMaxPartial int
	quadMaxDepth   int
}

// WithPageSize sets the simulated disk page size in bytes (default 4096,
// matching the paper's experimental setup).
func WithPageSize(bytes int) DatasetOption {
	return func(c *datasetConfig) { c.pageSize = bytes }
}

// WithDirectMemory serves index reads from memory while still counting page
// accesses — the paper's "data and index reside in main memory" scenario.
func WithDirectMemory(on bool) DatasetOption {
	return func(c *datasetConfig) { c.directMemory = on }
}

// WithInsertBuild builds the R*-tree by repeated insertion (exercising the
// full R* insertion/split/reinsert machinery) instead of bulk loading.
func WithInsertBuild(on bool) DatasetOption {
	return func(c *datasetConfig) { c.insertBuild = on }
}

// WithPageLatency makes every query-time page access block for d,
// simulating a disk-resident index (the paper's other deployment
// scenario). Index construction is unaffected. Concurrent queries overlap
// these waits, so an Engine with parallelism > 1 recovers most of the
// simulated I/O time.
func WithPageLatency(d time.Duration) DatasetOption {
	return func(c *datasetConfig) { c.pageLatency = d }
}

// WithMmap controls whether LoadSnapshotFile serves a v2 snapshot directly
// from a read-only memory mapping (the default) or decodes it onto the
// heap like a v1 snapshot. It has no effect on v1 snapshots, which are not
// mappable, or on LoadSnapshot, which reads a stream.
func WithMmap(on bool) DatasetOption {
	return func(c *datasetConfig) { c.noMmap = !on }
}

// WithQuadDefaults sets the dataset's default quad-tree partitioning: the
// leaf split threshold on |Pl| and the depth cap (0 keeps the library
// defaults; values must lie in [0, snapshot.MaxQuadParam] — dataset
// construction rejects anything else). Queries that do not pass
// WithQuadTree use these values, and WriteSnapshot persists them, so an
// operator-tuned partitioning survives a snapshot/load cycle.
func WithQuadDefaults(maxPartial, maxDepth int) DatasetOption {
	return func(c *datasetConfig) {
		c.quadMaxPartial = maxPartial
		c.quadMaxDepth = maxDepth
	}
}

// NewDataset indexes the given records (one row per record; all rows must
// share the same dimensionality d >= 2, attribute domain conventionally
// [0,1]).
func NewDataset(points [][]float64, opts ...DatasetOption) (*Dataset, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("repro: empty dataset")
	}
	cfg := datasetConfig{directMemory: true}
	for _, o := range opts {
		o(&cfg)
	}
	dim := len(points[0])
	if dim < 2 {
		return nil, fmt.Errorf("repro: dimensionality %d < 2", dim)
	}
	pts := make([]vecmath.Point, len(points))
	for i, row := range points {
		if len(row) != dim {
			return nil, fmt.Errorf("repro: record %d has %d attributes, want %d", i, len(row), dim)
		}
		pts[i] = vecmath.Point(row).Clone()
	}
	return buildDataset(pts, cfg)
}

// checkFinite rejects NaN and ±Inf coordinates. A single NaN silently
// poisons everything downstream — LP feasibility tests, score ordering,
// BBS dominance pruning and the dataset fingerprint — so non-finite input
// must fail at the door, not corrupt answers later.
func checkFinite(pts []vecmath.Point) error {
	for i, p := range pts {
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("repro: record %d attribute %d is %v; coordinates must be finite", i, j, v)
			}
		}
	}
	return nil
}

func buildDataset(pts []vecmath.Point, cfg datasetConfig) (*Dataset, error) {
	// Enforce the persistable range up front: a default outside it would
	// build a whole index only to fail later at WriteSnapshot with an
	// error blaming the snapshot format.
	if cfg.quadMaxPartial < 0 || cfg.quadMaxPartial > snapshot.MaxQuadParam ||
		cfg.quadMaxDepth < 0 || cfg.quadMaxDepth > snapshot.MaxQuadParam {
		return nil, fmt.Errorf("repro: quad-tree defaults (%d, %d) out of [0, %d]",
			cfg.quadMaxPartial, cfg.quadMaxDepth, snapshot.MaxQuadParam)
	}
	if err := checkFinite(pts); err != nil {
		return nil, err
	}
	store := pager.NewStore(cfg.pageSize)
	tree, err := rstar.New(store, len(pts[0]), rstar.Options{DirectMemory: cfg.directMemory})
	if err != nil {
		return nil, err
	}
	if cfg.insertBuild {
		for i, p := range pts {
			if err := tree.Insert(p, int64(i)); err != nil {
				return nil, err
			}
		}
	} else if err := tree.BulkLoad(pts, nil); err != nil {
		return nil, err
	}
	if err := tree.Finalize(); err != nil {
		return nil, err
	}
	store.ResetStats()
	store.SetLatency(cfg.pageLatency)
	return &Dataset{
		points:         pts,
		tree:           tree,
		src:            store,
		quadMaxPartial: cfg.quadMaxPartial,
		quadMaxDepth:   cfg.quadMaxDepth,
		directMemory:   cfg.directMemory,
		pageLatency:    cfg.pageLatency,
	}, nil
}

// GenerateDataset draws a synthetic benchmark dataset: dist is "IND", "COR"
// or "ANTI" (Section 8 of the paper), deterministic in seed.
func GenerateDataset(dist string, n, dim int, seed int64, opts ...DatasetOption) (*Dataset, error) {
	d, err := dataset.ParseDistribution(dist)
	if err != nil {
		return nil, err
	}
	if n <= 0 || dim < 2 {
		return nil, fmt.Errorf("repro: invalid size n=%d dim=%d", n, dim)
	}
	cfg := datasetConfig{directMemory: true}
	for _, o := range opts {
		o(&cfg)
	}
	return buildDataset(dataset.Generate(d, n, dim, seed), cfg)
}

// Len returns the number of records.
func (ds *Dataset) Len() int { return len(ds.points) }

// Dim returns the record dimensionality.
func (ds *Dataset) Dim() int { return ds.tree.Dim() }

// Point returns record i (a copy). An out-of-range index fails with an
// ErrBadQuery-wrapped error, like Engine.Query.
func (ds *Dataset) Point(i int) ([]float64, error) {
	if i < 0 || i >= len(ds.points) {
		return nil, fmt.Errorf("repro: record index %d out of range [0,%d): %w", i, len(ds.points), ErrBadQuery)
	}
	return ds.points[i].Clone(), nil
}

// IOReads returns the page reads accumulated since the last reset.
func (ds *Dataset) IOReads() int64 { return ds.src.Stats().Reads }

// ResetIO zeroes the page-access counters.
func (ds *Dataset) ResetIO() { ds.src.ResetStats() }

// Close releases the memory mapping of an mmap-served dataset (idempotent,
// nil-safe in effect: heap datasets have nothing to release). The dataset
// — and every dataset still aliasing the mapping — must not be used
// afterwards. Long-running servers deliberately never call Close on a
// dataset that may still have in-flight readers; the mapping is reclaimed
// by the OS at process exit.
func (ds *Dataset) Close() error {
	if ds.mapping == nil {
		return nil
	}
	return ds.mapping.Close()
}

// StorageMode names how a dataset's index image is held.
const (
	// StorageHeap marks an index decoded into process memory.
	StorageHeap = "heap"
	// StorageMmap marks an index served zero-copy from a read-only memory
	// mapping of a v2 snapshot.
	StorageMmap = "mmap"
)

// StorageStats describes how a dataset holds its records and index image —
// the memory-observability block surfaced by /v1/stats and expvar.
type StorageStats struct {
	// Mode is StorageHeap or StorageMmap.
	Mode string `json:"mode"`
	// SnapshotVersion is the snapshot format the dataset was loaded from
	// (0 = built in process; write-back preserves a non-zero version).
	SnapshotVersion int `json:"snapshot_version,omitempty"`
	// Float32 marks a dataset loaded from a float32-point snapshot.
	Float32 bool `json:"float32,omitempty"`
	// MappedBytes is the size of the memory-mapped snapshot image (0 for
	// heap datasets).
	MappedBytes int64 `json:"mapped_bytes"`
	// HeapBytes approximates the heap footprint of the records and index
	// pages: page payloads plus point values, excluding per-object
	// overhead. For mmap datasets only materialized parts count (the
	// float64 values of a float32 snapshot; zero when points alias the
	// mapping).
	HeapBytes int64 `json:"heap_bytes"`
}

// Storage reports the dataset's storage mode and footprint.
func (ds *Dataset) Storage() StorageStats {
	st := StorageStats{
		Mode:            StorageHeap,
		SnapshotVersion: ds.snapVersion,
		Float32:         ds.snapF32,
	}
	pointBytes := int64(len(ds.points)) * int64(ds.Dim()) * 8
	if ds.mapping != nil {
		st.Mode = StorageMmap
		st.MappedBytes = ds.mapping.Size()
		if !ds.pointsAliased {
			st.HeapBytes = pointBytes
		}
		return st
	}
	st.HeapBytes = pointBytes
	ds.src.ForEachPage(func(id pager.PageID, data []byte) error {
		st.HeapBytes += int64(len(data))
		return nil
	})
	return st
}

// Fingerprint returns a stable hex digest of the dataset content (the
// record values, in order, plus the dimensionality). Two datasets with the
// same records share a fingerprint regardless of how they were indexed, so
// it identifies a dataset across processes — it keys the result cache and
// is reported by the serving layer. Computed lazily once and then cached.
func (ds *Dataset) Fingerprint() string {
	ds.fpOnce.Do(func() {
		ds.fp = fingerprintPoints(ds.Dim(), ds.points)
	})
	return ds.fp
}

// fingerprintPoints computes the content digest behind Fingerprint. It is
// separate so the snapshot loader can verify a file's recorded
// fingerprint against its points before building any index structures.
func fingerprintPoints(dim int, pts []vecmath.Point) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(dim))
	h.Write(buf[:])
	for _, p := range pts {
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Score returns record i's score under the (full, d-dimensional) query
// vector q. An out-of-range index or a query vector of the wrong
// dimensionality fails with an ErrBadQuery-wrapped error, like
// Engine.Query.
func (ds *Dataset) Score(i int, q []float64) (float64, error) {
	if i < 0 || i >= len(ds.points) {
		return 0, fmt.Errorf("repro: record index %d out of range [0,%d): %w", i, len(ds.points), ErrBadQuery)
	}
	if len(q) != ds.Dim() {
		return 0, fmt.Errorf("repro: query vector has %d attributes, dataset has %d: %w", len(q), ds.Dim(), ErrBadQuery)
	}
	return ds.points[i].Dot(vecmath.Point(q)), nil
}

// RankOf returns the 1-based rank of a (possibly external) record under q.
// A record or query vector of the wrong dimensionality fails with an
// ErrBadQuery-wrapped error, like Engine.Query.
func (ds *Dataset) RankOf(record, q []float64) (int, error) {
	if len(record) != ds.Dim() {
		return 0, fmt.Errorf("repro: record has %d attributes, dataset has %d: %w", len(record), ds.Dim(), ErrBadQuery)
	}
	if len(q) != ds.Dim() {
		return 0, fmt.Errorf("repro: query vector has %d attributes, dataset has %d: %w", len(q), ds.Dim(), ErrBadQuery)
	}
	return vecmath.OrderOf(ds.points, vecmath.Point(record), vecmath.Point(q)), nil
}

// QuadDefaults returns the dataset's default quad-tree partitioning
// parameters (0 = library default).
func (ds *Dataset) QuadDefaults() (maxPartial, maxDepth int) {
	return ds.quadMaxPartial, ds.quadMaxDepth
}

// internalInput assembles a core.Input for this dataset.
func (ds *Dataset) internalInput(focal vecmath.Point, focalID int64, cfg *queryConfig) core.Input {
	return core.Input{
		Tree:             ds.tree,
		Focal:            focal,
		FocalID:          focalID,
		Tau:              cfg.Tau,
		QuadMaxPartial:   cfg.QuadMaxPartial,
		QuadMaxDepth:     cfg.QuadMaxDepth,
		CollectRecordIDs: cfg.OutrankIDs,
	}
}
