package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// Result is the answer to a MaxRank (or iMaxRank) query.
type Result struct {
	// KStar is the best (smallest) rank the focal record can achieve under
	// any permissible preference vector.
	KStar int
	// Dominators is |D+|, the number of records that outrank the focal
	// record under every preference.
	Dominators int64
	// MinOrder is the minimum arrangement-cell order (KStar-Dominators-1).
	MinOrder int
	// Regions lists every region of the preference space where the focal
	// record's rank is within [KStar, KStar+τ], sorted by ascending rank.
	Regions []Region
	// Stats reports the query's cost counters. For a cached Result these
	// are the counters of the original computation, not of the lookup.
	Stats Stats
	// Cached reports that this Result was served from an engine's result
	// cache (see WithCache) rather than computed for this call. Results
	// from a cache-enabled engine share their Regions storage with the
	// cache: treat Regions as read-only whether or not Cached is set.
	// Apart from this flag, a cached Result is identical to the originally
	// computed one.
	Cached bool
}

// Region is one region of the preference space. Geometry lives in the
// reduced (d-1)-dimensional query space: a preference (q1..q_{d-1}) with
// q_d = 1 - Σ q_i.
type Region struct {
	// Rank of the focal record anywhere in this region (KStar..KStar+τ).
	Rank int
	// Order is the region's cell order (Rank - Dominators - 1).
	Order int
	// Witness is a point strictly inside the region, in reduced coordinates.
	Witness []float64
	// QueryVector is the witness lifted to a full d-dimensional preference.
	QueryVector []float64
	// BoxLo/BoxHi bound the region (the enclosing quad-tree leaf; for d = 2
	// they are exactly the q1 interval).
	BoxLo, BoxHi []float64
	// Constraints describe the region exactly: it is the set of reduced
	// query vectors q satisfying every constraint (A·q >= B), intersected
	// with the box and the domain simplex.
	Constraints []Constraint
	// OutrankIDs lists the records outranking the focal record in this
	// region (requires WithOutrankIDs).
	OutrankIDs []int64
}

// Constraint is a closed half-space A·q >= B in reduced query space.
type Constraint struct {
	A []float64
	B float64
}

// Contains reports whether a reduced-space preference vector lies in the
// region (within tol of every bounding constraint).
func (r *Region) Contains(q []float64, tol float64) bool {
	for i, v := range q {
		if v < r.BoxLo[i]-tol || v > r.BoxHi[i]+tol {
			return false
		}
	}
	for _, c := range r.Constraints {
		if vecmath.Point(c.A).Dot(q) < c.B-tol {
			return false
		}
	}
	return true
}

// Stats reports the cost counters the paper's evaluation tracks
// (Section 8).
type Stats struct {
	// CPUTime is the wall-clock time of the computation.
	CPUTime time.Duration
	// IO is the number of simulated page accesses attributed to this query.
	// Like IncomparableAccessed and the LP/leaf counters, it reflects the
	// physical index layout: datasets holding the same records but indexed
	// differently (bulk load vs insert build vs incremental mutation via
	// Dataset.Apply) report different costs for bit-identical answers.
	// Under shared-arrangement execution (WithBatchSharing, QueryGroup)
	// the group's one classification scan is charged in full to every
	// member, so a member's IO is the pages read on its behalf — but
	// summing members' IO multiply-counts the shared pages.
	IO int64
	// IncomparableAccessed is n (BA/FCA) or n_a (AA): the incomparable
	// records the algorithm actually examined. Under shared-arrangement
	// execution the group prefix materialises the full incomparable set,
	// so AA reports n here rather than the tree-backed n_a; the answer is
	// unaffected.
	IncomparableAccessed int64
	// HalfspacesInserted counts half-spaces inserted into the quad-tree.
	HalfspacesInserted int
	// LPCalls counts simplex invocations by the within-leaf enumerator.
	LPCalls int64
	// LeavesProcessed and LeavesPruned count quad-tree leaves enumerated
	// versus discarded by the order bounds.
	LeavesProcessed int
	LeavesPruned    int
	// Iterations counts AA's incremental expansion rounds (1 for BA/FCA).
	Iterations int
	// Algorithm is the strategy that produced the result (Auto resolved).
	Algorithm Algorithm
}

// Compute runs MaxRank for the dataset record with the given index. It is
// a thin wrapper over Engine.Query with a background context; services
// needing concurrency, batching, cancellation or timeouts should hold a
// long-lived Engine instead.
func Compute(ds *Dataset, focalIndex int, opts ...Option) (*Result, error) {
	eng, err := NewEngine(ds, WithParallelism(1))
	if err != nil {
		return nil, err
	}
	return eng.Query(context.Background(), focalIndex, opts...)
}

// ComputeFor runs MaxRank for a hypothetical record that is not part of the
// dataset (the paper's "what-if" scenario: evaluating a product before
// launching it). It is a thin wrapper over Engine.QueryPoint.
func ComputeFor(ds *Dataset, focal []float64, opts ...Option) (*Result, error) {
	eng, err := NewEngine(ds, WithParallelism(1))
	if err != nil {
		return nil, err
	}
	return eng.QueryPoint(context.Background(), focal, opts...)
}

func convertResult(res *core.Result, alg Algorithm) *Result {
	out := &Result{
		KStar:      res.KStar,
		Dominators: res.Dominators,
		MinOrder:   res.MinOrder,
		Regions:    make([]Region, 0, len(res.Regions)),
		Stats: Stats{
			CPUTime:              res.Stats.CPUTime,
			IO:                   res.Stats.IO,
			IncomparableAccessed: res.Stats.IncomparableAccessed,
			HalfspacesInserted:   res.Stats.HalfspacesInserted,
			LPCalls:              res.Stats.LPCalls,
			LeavesProcessed:      res.Stats.LeavesProcessed,
			LeavesPruned:         res.Stats.LeavesPruned,
			Iterations:           res.Stats.Iterations,
			Algorithm:            alg,
		},
	}
	for i := range res.Regions {
		reg := &res.Regions[i]
		r := Region{
			Rank:        int(res.Dominators) + reg.Order + 1,
			Order:       reg.Order,
			Witness:     reg.Witness.Clone(),
			QueryVector: reg.QueryVector(),
			BoxLo:       reg.Box.Lo.Clone(),
			BoxHi:       reg.Box.Hi.Clone(),
			OutrankIDs:  reg.OutrankIDs,
		}
		for _, h := range reg.Constraints {
			r.Constraints = append(r.Constraints, Constraint{A: h.A.Clone(), B: h.B})
		}
		out.Regions = append(out.Regions, r)
	}
	return out
}

// Validate re-checks a Result against the dataset by direct scoring at
// every region witness; it returns an error describing the first mismatch.
// It is cheap insurance for library users and is used heavily in tests.
func Validate(ds *Dataset, focalIndex int, res *Result) error {
	focal := ds.points[focalIndex]
	for i := range res.Regions {
		reg := &res.Regions[i]
		q := vecmath.Point(reg.QueryVector)
		if !vecmath.IsPermissible(q, 1e-9) {
			return fmt.Errorf("repro: region %d witness lifts to non-permissible %v", i, q)
		}
		fs := focal.Dot(q)
		rank := 1
		for j, r := range ds.points {
			if j == focalIndex {
				continue
			}
			if r.Dot(q) > fs {
				rank++
			}
		}
		if rank != reg.Rank {
			return fmt.Errorf("repro: region %d claims rank %d but direct scoring gives %d", i, reg.Rank, rank)
		}
	}
	if len(res.Regions) > 0 && res.Regions[0].Rank != res.KStar {
		return fmt.Errorf("repro: best region rank %d != k* %d", res.Regions[0].Rank, res.KStar)
	}
	return nil
}
